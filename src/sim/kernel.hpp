// The discrete-event simulation kernel.
//
// A Kernel owns the event queue and the global notion of "now". All simulated
// hardware units (SimObjects) hold a reference to one Kernel and schedule
// their activity on it. Execution is strictly sequential and deterministic:
// events at equal times run in scheduling order.
#pragma once

#include <cstdint>
#include <string>

#include "sim/event.hpp"
#include "sim/types.hpp"

namespace sv::trace {
class Tracer;
}  // namespace sv::trace

namespace sv::fault {
class Injector;
}  // namespace sv::fault

namespace sv::sim {

class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] Tick now() const { return now_; }

  /// Schedule `fn` to run `delta` ticks from now (delta may be 0: the event
  /// runs after all currently-executing work, still at the same time).
  void schedule(Tick delta, EventQueue::Callback fn) {
    events_.push(now_ + delta, std::move(fn));
  }

  /// Schedule `fn` at an absolute time, which must be >= now().
  void schedule_abs(Tick when, EventQueue::Callback fn);

  /// Run until the event queue drains. Returns the final time.
  Tick run();

  /// Run events with time <= `t`; afterwards now() == t unless the queue
  /// drained earlier (then now() is the last event time).
  Tick run_until(Tick t);

  /// Run exactly one event if any is pending. Returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const { return events_.empty(); }

  /// Time of the next pending event, or kTickInvalid when idle.
  [[nodiscard]] Tick next_event_time() const {
    return events_.empty() ? kTickInvalid : events_.next_time();
  }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Hard cap on events per run() call, as a runaway guard for tests.
  /// 0 disables the cap.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Timeline tracer, or nullptr when tracing is off. Instrumentation
  /// sites must treat nullptr as "record nothing" — that null check is the
  /// entire disabled-path cost.
  [[nodiscard]] trace::Tracer* tracer() const { return tracer_; }
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Fault injector, or nullptr when fault injection is off. Hook sites
  /// must treat nullptr as "inject nothing" — like the tracer, the null
  /// check is the entire disabled-path cost.
  [[nodiscard]] fault::Injector* fault_injector() const { return fault_; }
  void set_fault_injector(fault::Injector* fault) { fault_ = fault; }

 private:
  EventQueue events_;
  Tick now_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t event_limit_ = 0;
  trace::Tracer* tracer_ = nullptr;
  fault::Injector* fault_ = nullptr;
};

/// Base class for named simulated components.
class SimObject {
 public:
  SimObject(Kernel& kernel, std::string name)
      : kernel_(kernel), name_(std::move(name)) {}
  virtual ~SimObject() = default;

  SimObject(const SimObject&) = delete;
  SimObject& operator=(const SimObject&) = delete;

  [[nodiscard]] Kernel& kernel() const { return kernel_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Tick now() const { return kernel_.now(); }

 protected:
  Kernel& kernel_;  // NOLINT(misc-non-private-member-variables-in-classes)

 private:
  std::string name_;
};

}  // namespace sv::sim

// The discrete-event simulation kernel.
//
// A Kernel owns the event queue and the notion of "now" for one *event
// domain*. All simulated hardware units (SimObjects) hold a reference to one
// Kernel and schedule their activity on it. Execution within a domain is
// strictly sequential and deterministic: events at equal times run in
// scheduling order.
//
// A whole machine is either one domain (the classic sequential case) or one
// domain per node (sim::ParallelKernel). Work that crosses a domain boundary
// — a packet handed from one node to another — must not go through
// schedule(), whose tie-break is local push order; it goes through post(),
// the cross-domain mailbox. Mailbox messages carry an explicit
// (tick, source, sequence) key and are injected into the event queue at the
// moment the domain's clock first advances to their tick, in key order:
// after every event already queued at that tick, before anything scheduled
// during it. Because the rule references only the key and the local queue —
// never global arrival order — a single-domain run and an N-domain run
// interleave each node's events identically, which is what makes parallel
// execution bit-reproducible against the sequential kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "sim/event.hpp"
#include "sim/types.hpp"

namespace sv::ckpt {
class Writer;
}  // namespace sv::ckpt

namespace sv::trace {
class Tracer;
}  // namespace sv::trace

namespace sv::fault {
class Injector;
}  // namespace sv::fault

namespace sv::sim {

class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] Tick now() const { return now_; }

  /// Schedule `fn` to run `delta` ticks from now (delta may be 0: the event
  /// runs after all currently-executing work, still at the same time).
  void schedule(Tick delta, EventQueue::Callback fn) {
    events_.push(now_ + delta, std::move(fn));
  }

  /// Schedule `fn` at an absolute time, which must be >= now().
  void schedule_abs(Tick when, EventQueue::Callback fn);

  /// Reserve `n` consecutive dispatch tie-break keys (sequence numbers)
  /// and return the first. See EventQueue::reserve_seqs and DESIGN.md §12:
  /// fast and slow mode reserve at identical program points, which pins
  /// dispatch order — and therefore stats and traces — across modes.
  std::uint64_t reserve_seqs(std::uint64_t n) {
    return events_.reserve_seqs(n);
  }

  /// Schedule `fn` at absolute time `when` under a reserved sequence
  /// number. (when, seq) must be at or after the currently dispatching
  /// event's key; `when` must be >= now().
  void schedule_at_seq(Tick when, std::uint64_t seq, EventQueue::Callback fn);

  /// Key of the event currently being dispatched (its tie-break sequence
  /// number). Valid only while an event is executing; the fast-path
  /// revocation protocol compares this against reserved phase keys to
  /// decide which phases of a bypassed operation have already "happened".
  [[nodiscard]] std::uint64_t current_seq() const { return current_seq_; }

  /// True when nothing can dispatch in (now, until]: no queued event or
  /// mailbox message in that window, and — in an epoch-bounded run — the
  /// window does not extend past the epoch, so no cross-domain message
  /// committed at the next barrier can land inside it either. Tenure
  /// coalescing uses this to prove a whole burst is interference-free.
  [[nodiscard]] bool quiet_until(Tick until) const {
    const Tick nev = next_event_time();
    if (nev != kTickInvalid && nev <= until) {
      return false;
    }
    return run_bound_ == kTickInvalid || until <= run_bound_;
  }

  /// Cross-domain mailbox: deliver `fn` at absolute time `when`, ordered by
  /// (when, src, seq) against every other posted message regardless of the
  /// order post() calls arrive in. `seq` must be monotone per `src` (the
  /// sender's own deterministic send order). `when` must be strictly ahead
  /// of the sender's epoch — the conservative lookahead guarantee.
  ///
  /// Thread-safe in deferred mode (see set_deferred_mailbox); in immediate
  /// mode it may only be called from this domain's executing events.
  void post(Tick when, std::uint32_t src, std::uint64_t seq,
            EventQueue::Callback fn);

  /// Deferred mode (parallel execution): post() stages messages in a locked
  /// side buffer, and they only become runnable when the epoch coordinator
  /// calls commit_mailbox() at a barrier. Immediate mode (the default,
  /// sequential execution): post() files messages directly.
  void set_deferred_mailbox(bool on) { deferred_mailbox_ = on; }

  /// Arrival hook for the O(active-domains) barrier: in deferred mode,
  /// `fn` fires once per staged_ empty-to-nonempty transition — i.e. at
  /// most once between commits — telling the epoch coordinator this
  /// domain has mail and must be committed and woken at the next barrier.
  /// Called from whichever worker thread posted, outside staged_mu_; the
  /// callee must do its own locking.
  void set_post_notify(std::function<void()> fn) {
    post_notify_ = std::move(fn);
  }

  /// Move staged messages into the runnable mailbox. Call only while no
  /// worker is executing this domain (i.e. at an epoch barrier).
  void commit_mailbox();

  /// Run until the event queue and mailbox drain. Returns the final time.
  Tick run();

  /// Run events with time <= `t`; afterwards now() == t unless the queue
  /// drained earlier (then now() is the last event time).
  Tick run_until(Tick t);

  /// Run exactly one event if any is pending. Returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const {
    return events_.empty() && mailbox_.empty();
  }

  /// Time of the next pending event or mailbox message, or kTickInvalid
  /// when idle. Staged (uncommitted) messages are not considered.
  [[nodiscard]] Tick next_event_time() const {
    const Tick qt = events_.empty() ? kTickInvalid : events_.next_time();
    const Tick mt = mailbox_.empty() ? kTickInvalid : mailbox_.top().when;
    return qt < mt ? qt : mt;
  }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Total sequence numbers issued (events scheduled + keys reserved).
  /// Mode-invariant across fast/slow path runs, unlike events_executed()
  /// — see EventQueue::total_scheduled().
  [[nodiscard]] std::uint64_t events_scheduled() const {
    return events_.total_scheduled();
  }

  /// Hard cap on events per run()/run_until() call, as a runaway guard for
  /// tests. 0 disables the cap. The budget is per call: each run() or
  /// run_until() starts a fresh count.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Timeline tracer, or nullptr when tracing is off. Instrumentation
  /// sites must treat nullptr as "record nothing" — that null check is the
  /// entire disabled-path cost.
  [[nodiscard]] trace::Tracer* tracer() const { return tracer_; }
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Fault injector, or nullptr when fault injection is off. Hook sites
  /// must treat nullptr as "inject nothing" — like the tracer, the null
  /// check is the entire disabled-path cost.
  [[nodiscard]] fault::Injector* fault_injector() const { return fault_; }
  void set_fault_injector(fault::Injector* fault) { fault_ = fault; }

  /// Append the domain's snapshot state to `w`: clock, dispatch counters,
  /// the event queue's pending keys (EventQueue::ckpt_save), and every
  /// pending cross-domain mailbox key in (when, src, seq) order. Must be
  /// called while no event is executing and staged_ is empty — i.e. at an
  /// epoch boundary (DESIGN.md §14).
  void ckpt_save(ckpt::Writer& w) const;

 private:
  struct CrossMsg {
    Tick when;
    std::uint32_t src;
    std::uint64_t seq;
    // Mutable for the same reason as EventQueue::Entry: moved out of the
    // priority queue's const top(); ordering never inspects it.
    mutable EventQueue::Callback fn;

    bool operator>(const CrossMsg& o) const {
      if (when != o.when) {
        return when > o.when;
      }
      if (src != o.src) {
        return src > o.src;
      }
      return seq > o.seq;
    }
  };
  using Mailbox =
      std::priority_queue<CrossMsg, std::vector<CrossMsg>, std::greater<>>;

  /// Execute the earliest event no later than `bound`, first injecting any
  /// mailbox messages due at its tick. Returns false when nothing <= bound
  /// is pending. Throws when the per-run event budget is exhausted.
  bool dispatch_one(Tick bound);

  EventQueue events_;
  Mailbox mailbox_;
  std::vector<CrossMsg> staged_;
  std::mutex staged_mu_;
  std::function<void()> post_notify_;
  bool deferred_mailbox_ = false;
  Tick now_ = 0;
  std::uint64_t current_seq_ = 0;
  Tick run_bound_ = kTickInvalid;
  std::uint64_t executed_ = 0;
  std::uint64_t run_executed_ = 0;
  std::uint64_t event_limit_ = 0;
  trace::Tracer* tracer_ = nullptr;
  fault::Injector* fault_ = nullptr;
};

/// Base class for named simulated components.
class SimObject {
 public:
  SimObject(Kernel& kernel, std::string name)
      : kernel_(kernel), name_(std::move(name)) {}
  virtual ~SimObject() = default;

  SimObject(const SimObject&) = delete;
  SimObject& operator=(const SimObject&) = delete;

  [[nodiscard]] Kernel& kernel() const { return kernel_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Tick now() const { return kernel_.now(); }

 protected:
  Kernel& kernel_;  // NOLINT(misc-non-private-member-variables-in-classes)

 private:
  std::string name_;
};

}  // namespace sv::sim

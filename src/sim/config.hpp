// Simple typed key=value configuration store used to parameterize the
// machine (clock periods, queue sizes, firmware handler costs, ...).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sv::sim {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" strings (e.g. from argv); malformed entries throw.
  static Config from_args(const std::vector<std::string>& args);

  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }
  void set_u64(const std::string& key, std::uint64_t value);
  void set_double(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);

  [[nodiscard]] bool contains(const std::string& key) const {
    return values_.count(key) != 0;
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& def = "") const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  [[nodiscard]] const std::map<std::string, std::string>& all() const {
    return values_;
  }

  /// Merge `other` on top of this config (other wins on conflicts).
  void merge(const Config& other);

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace sv::sim

// Event queue for the discrete-event kernel.
//
// Events are arbitrary callables scheduled at an absolute Tick. Ties are
// broken by insertion sequence number, which makes every simulation run
// fully deterministic for a given program.
//
// Two-level structure (see DESIGN.md §11). The near future — the next
// kBuckets * kBucketTicks ticks — lives in a calendar wheel: kBuckets
// power-of-two-sized buckets, each covering kBucketTicks ticks. Buckets
// stay sorted by (tick, seq): pushes in monotone time order (the common
// case) append, everything else splices in by binary search over a
// handful of entries. Everything beyond the horizon goes
// to a binary heap. pop() compares the wheel front against the heap top
// under the same (tick, seq) key, so events that entered the heap while
// far away and events that entered the wheel interleave in exactly the
// order a single heap would have produced — dispatch order, and therefore
// every stat, trace span and fault draw, is bit-identical to the old
// single-heap queue.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_func.hpp"
#include "sim/types.hpp"

namespace sv::ckpt {
class Writer;
}  // namespace sv::ckpt

namespace sv::sim {

class EventQueue {
 public:
  using Callback = InlineFunc;

  /// Wheel geometry. kBucketTicks is a compromise forced by Tick = 1 ps:
  /// the machine's clock periods are 6000-15000 ticks, so a one-tick
  /// bucket wheel covering "the next 4K ticks" would hold almost nothing.
  /// 16-tick buckets with 4096 of them put the horizon at 64K ticks
  /// (~65 ns), which empirically captures ~85-90% of scheduled events; the
  /// rest ride the far heap, which pop() consults anyway (DESIGN.md §11).
  /// Narrow buckets keep per-bucket occupancy near one event, so the lazy
  /// tail sort in front_bucket() almost never runs — with 64-tick buckets
  /// it fired once per ~6 events and profiled at a quarter of dispatch.
  /// 4096 buckets make the occupancy bitmap exactly 64 words under one
  /// 64-bit summary word: finding the next non-empty bucket is two bit
  /// scans.
  static constexpr std::size_t kBuckets = 4096;  // power of two
  static constexpr unsigned kBucketShift = 4;    // 16 ticks per bucket
  static constexpr Tick kBucketTicks = Tick{1} << kBucketShift;
  static constexpr Tick kHorizonTicks = kBuckets * kBucketTicks;

  EventQueue();

  /// Schedule `fn` to run at absolute time `when`. `when` must be >= the
  /// current floor (the last popped/advanced time) — the kernel's
  /// no-events-in-the-past rule.
  void push(Tick when, Callback fn);

  /// Reserve `n` consecutive sequence numbers and return the first. The
  /// fast-path layer (DESIGN.md §12) reserves an operation's tie-break
  /// keys up front — identically in fast and slow mode — so that events
  /// later pushed with push_at_seq() occupy the same position in dispatch
  /// order regardless of when the push itself happens. Reserved numbers
  /// that end up unused are simply holes; only relative order matters.
  std::uint64_t reserve_seqs(std::uint64_t n) {
    const std::uint64_t base = next_seq_;
    next_seq_ += n;
    return base;
  }

  /// Schedule `fn` at `when` under a previously reserved sequence number
  /// instead of a fresh one. The (when, seq) pair must be unique among
  /// live events (a dead — revoked — event may share it; see MemBus).
  void push_at_seq(Tick when, std::uint64_t seq, Callback fn);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return wheel_count_ == 0 && heap_.empty(); }

  [[nodiscard]] std::size_t size() const {
    return wheel_count_ + heap_.size();
  }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Tick next_time() const;

  /// Remove and return the earliest event. Precondition: !empty().
  /// Returning {when, seq, fn} together spares the caller a second
  /// traversal (the old next_time() + pop() pair walked the heap top
  /// twice); seq is the dispatch tie-break key the fast-path revocation
  /// protocol compares phase keys against.
  struct Popped {
    Tick when;
    std::uint64_t seq;
    Callback fn;
  };
  Popped pop();

  /// pop(), but only if the earliest event is at or before `bound`;
  /// otherwise returns {kTickInvalid, empty} and leaves the queue intact.
  /// One traversal where the kernel's next_time()-compare-then-pop() pair
  /// would locate the front twice per dispatched event.
  Popped try_pop(Tick bound);

  /// Raise the queue's notion of "no event can be scheduled before this".
  /// Called by the kernel whenever simulated time advances, so the wheel
  /// window tracks now() even across idle jumps (run_until past the last
  /// event). Never un-advances.
  void advance(Tick now) {
    if (now > floor_) {
      floor_ = now;
    }
  }

  /// Total number of sequence numbers ever issued: events scheduled plus
  /// keys reserved via reserve_seqs(). Unlike the executed-event count,
  /// this is identical between fast-path and slow-path runs (reservations
  /// happen at the same program points in both), which is why the stats
  /// dump reports it (DESIGN.md §12).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

  /// Append the queue's snapshot state to `w`: floor, next sequence number
  /// (which encodes reserved-sequence holes — a reserved-but-unused key
  /// advances next_seq_ with no matching pending event), and every pending
  /// (when, seq) key in dispatch order. The callbacks themselves are
  /// closures and are not serialized; restore re-creates them by replaying
  /// the run, then byte-compares this chunk (DESIGN.md §14).
  void ckpt_save(ckpt::Writer& w) const;

 private:
  struct Rec {
    Tick when;
    std::uint64_t seq;
    Callback fn;
  };

  /// Far-heap entry: 24 bytes of ordering key plus a slot index into
  /// far_slab_. The heap's sift operations move these instead of 80-byte
  /// Recs — the callback itself moves exactly twice (in at push, out at
  /// pop) however deep the heap gets.
  struct HeapRec {
    Tick when;
    std::uint64_t seq;
    std::uint32_t idx;

    bool operator>(const HeapRec& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  struct Bucket {
    std::vector<Rec> items;
    std::uint32_t head = 0;   // items[0..head) already dispatched
    bool unsorted = false;    // pending tail [head..) needs a sort pass
  };

  static constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};

  [[nodiscard]] static std::size_t bucket_index(Tick when) {
    return (when >> kBucketShift) & (kBuckets - 1);
  }
  [[nodiscard]] bool in_window(Tick when) const {
    return ((when >> kBucketShift) - (floor_ >> kBucketShift)) < kBuckets;
  }

  void set_bit(std::size_t b) {
    occ_[b >> 6] |= std::uint64_t{1} << (b & 63);
    summary_ |= std::uint64_t{1} << (b >> 6);
  }
  void clear_bit(std::size_t b) {
    occ_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    if (occ_[b >> 6] == 0) {
      summary_ &= ~(std::uint64_t{1} << (b >> 6));
    }
  }

  /// Index of the earliest non-empty bucket (circular scan from the
  /// floor's bucket). Precondition: wheel_count_ > 0.
  [[nodiscard]] std::size_t scan_from_floor() const;

  /// The wheel's earliest bucket, sorted and cached. Precondition:
  /// wheel_count_ > 0.
  Bucket& front_bucket() const;

  /// Sort a bucket's pending tail by (when, seq). Large tails sort
  /// lightweight keys and permute, so 80-byte records move only twice.
  void sort_pending(Bucket& b) const;

  struct SortKey {
    Tick when;
    std::uint64_t seq;
    std::uint32_t idx;
  };

  // Wheel state. Mutable because locating/sorting the front bucket is a
  // cache fill, not an observable mutation (next_time() stays const).
  mutable std::vector<Bucket> buckets_;
  mutable std::uint32_t cur_bucket_ = kNoBucket;
  // Scratch for sort_pending (reused, so steady-state sorts don't allocate
  // once warm).
  mutable std::vector<SortKey> keys_;
  mutable std::vector<Rec> scratch_;
  // Two-level occupancy bitmap: bit g of summary_ set iff occ_[g] != 0.
  std::uint64_t occ_[kBuckets / 64] = {};
  std::uint64_t summary_ = 0;
  std::size_t wheel_count_ = 0;
  Tick floor_ = 0;

  std::priority_queue<HeapRec, std::vector<HeapRec>, std::greater<>> heap_;
  /// Callback storage for heap entries, recycled through far_free_ so the
  /// steady state allocates nothing (alloc_hook_test).
  std::vector<Callback> far_slab_;
  std::vector<std::uint32_t> far_free_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sv::sim

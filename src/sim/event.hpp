// Event queue for the discrete-event kernel.
//
// Events are arbitrary callables scheduled at an absolute Tick. Ties are
// broken by insertion sequence number, which makes every simulation run
// fully deterministic for a given program.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace sv::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` to run at absolute time `when`.
  void push(Tick when, Callback fn);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Tick next_time() const { return heap_.top().when; }

  /// Remove and return the earliest event's callback. Precondition: !empty().
  Callback pop();

  /// Total number of events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

 private:
  struct Entry {
    Tick when;
    std::uint64_t seq;
    // Mutable so we can move the callback out of the priority queue's
    // const top() reference without copying; ordering never inspects it.
    mutable Callback fn;

    bool operator>(const Entry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sv::sim

// Conservative parallel scheduling of multiple event domains.
//
// ParallelKernel runs one Kernel per node on a fixed pool of worker threads,
// synchronizing in epochs of `lookahead` ticks — the minimum latency of any
// domain-crossing link. Within an epoch every domain advances independently;
// anything it sends to another domain is timestamped at least one full
// lookahead ahead, so it cannot affect the current epoch and is staged in the
// destination's mailbox. At the epoch barrier the coordinator commits every
// mailbox and the next epoch begins. This is the classic
// Chandy–Misra–Bryant-style conservative scheme with the link latency as
// lookahead (cf. SimBricks): no rollbacks, no null messages — just a global
// epoch barrier.
//
// Determinism: the mailbox injection rule in Kernel orders cross-domain
// messages by (tick, source, sequence) regardless of which worker staged
// them first, so the result of a run is independent of thread count and
// bit-identical to a single-domain sequential run that routes the same
// messages through the same rule.
//
// Scalability: the barrier is O(active domains), not O(domains). A domain
// whose event queue and mailbox drain parks: it leaves the active list,
// workers skip it, and the barrier neither runs it nor commits its (empty)
// mailbox. It rejoins only when another domain posts to it — Kernel's
// post-notify hook fires on the staged buffer's empty-to-nonempty
// transition and enqueues the domain on the coordinator's wake list. A
// 1024-node machine with 8 talkative nodes does 8 domains' worth of
// barrier work per epoch. Parked domains' local clocks lag (nothing runs
// them); quiesce() — called whenever run_epochs_until hands control back —
// advances every lagging idle domain to the global epoch boundary, so
// externally observable state (checkpoints, per-domain now()) stays
// byte-identical to the run-everyone-every-epoch scheme.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/types.hpp"

namespace sv::sim {

/// Maps a node id to the Kernel (event domain) that simulates it. The
/// single-domain machine and the per-node partitioned machine both present
/// this interface, so shared components (the network, helpers) can be
/// written once against it.
class DomainMap {
 public:
  /// Classic sequential layout: every node lives in `kernel`.
  DomainMap(Kernel& kernel, std::size_t nodes)
      : domains_(nodes, &kernel), partitioned_(false) {}

  /// Partitioned layout: node n lives in domains[n].
  explicit DomainMap(std::vector<Kernel*> domains)
      : domains_(std::move(domains)), partitioned_(true) {}

  [[nodiscard]] Kernel& of(NodeId n) const { return *domains_[n]; }
  [[nodiscard]] std::size_t nodes() const { return domains_.size(); }

  /// True when nodes may live in distinct domains (so handoff between them
  /// must use the mailbox with conservative lookahead).
  [[nodiscard]] bool partitioned() const { return partitioned_; }

 private:
  std::vector<Kernel*> domains_;
  bool partitioned_;
};

/// Epoch-stepped coordinator over per-node Kernels. Not a Kernel itself:
/// callers drive it in whole epochs (run_epochs_until); per-event stepping
/// has no meaning across concurrently-advancing domains.
class ParallelKernel {
 public:
  /// `domains` must outlive this object. `threads` worker threads are
  /// started immediately (clamped to [1, domains.size()]); domain d is
  /// always run by worker d % threads, so the assignment — and therefore
  /// any per-thread effect — is reproducible. Every domain is switched to
  /// deferred-mailbox mode. `lookahead` must be >= 1 tick.
  ParallelKernel(std::vector<Kernel*> domains, unsigned threads,
                 Tick lookahead);
  ~ParallelKernel();

  ParallelKernel(const ParallelKernel&) = delete;
  ParallelKernel& operator=(const ParallelKernel&) = delete;

  /// Run whole epochs until `pred` holds at an epoch boundary, every domain
  /// is idle, or the next epoch would start past `deadline`. Returns the
  /// final value of `pred`. The predicate is only evaluated at barriers
  /// (with all workers parked), so it may freely inspect machine state.
  bool run_epochs_until(const std::function<bool()>& pred, Tick deadline);

  /// Advance exactly one epoch (all active domains to the next boundary,
  /// then commit the mailboxes of active and newly-woken domains).
  void run_epoch();

  /// Advance every parked domain's local clock to now(). Call at a
  /// barrier before inspecting per-domain state that depends on the
  /// clock (checkpoint capture does, via run_epochs_until): parked
  /// domains are idle, so this is a pure clock/wheel catch-up with no
  /// events to run. Idempotent.
  void quiesce();

  /// Time up to which every domain has finished executing (the last epoch
  /// boundary). Matches kernel.now() after the equivalent sequential
  /// run_until.
  [[nodiscard]] Tick now() const { return now_; }

  [[nodiscard]] Tick lookahead() const { return lookahead_; }
  [[nodiscard]] unsigned threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// True when no domain has pending work (valid only at a barrier).
  /// O(1): the active list is exactly the set of non-idle domains.
  [[nodiscard]] bool idle() const { return active_.empty(); }

  /// Domains on the active list (run every epoch). Parked domains are
  /// the remainder. Valid only at a barrier.
  [[nodiscard]] std::size_t active_domains() const { return active_.size(); }

 private:
  void worker_main(unsigned id);

  std::vector<Kernel*> domains_;
  Tick lookahead_;
  Tick epoch_start_ = 0;  // first tick of the next epoch to run
  Tick epoch_end_ = 0;    // inclusive bound handed to workers
  Tick now_ = 0;

  /// Sorted indices of domains with pending work. Written by the
  /// coordinator at barriers (workers parked); read by workers during an
  /// epoch. The mu_ handshake that releases workers is the
  /// happens-before edge.
  std::vector<std::size_t> active_;
  /// Wake list: domains whose staged mailbox went nonempty this epoch.
  /// Appended by whichever worker thread posted (via Kernel's post-notify
  /// hook), drained by the coordinator at the barrier.
  std::vector<std::size_t> woken_;
  std::mutex wake_mu_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped to release workers into an epoch
  unsigned running_ = 0;          // workers still inside the current epoch
  bool stop_ = false;
  std::exception_ptr error_;  // first failure from any worker
};

}  // namespace sv::sim

// Lightweight structured logging for simulator components.
//
// Each component logs through a named Logger; a global level (and optional
// per-component overrides) controls verbosity. Messages are prefixed with
// the simulated time so traces read like hardware waveform annotations.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace sv::sim {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

class Kernel;

/// Global logging configuration (process-wide; the simulator is
/// single-threaded by design).
class LogConfig {
 public:
  static LogLevel global_level();
  static void set_global_level(LogLevel lvl);
  static void set_component_level(const std::string& component, LogLevel lvl);
  static LogLevel level_for(const std::string& component);
  static void reset();
};

class Logger {
 public:
  Logger(const Kernel& kernel, std::string component);

  [[nodiscard]] bool enabled(LogLevel lvl) const;

  template <typename... Args>
  void trace(const Args&... args) const {
    log(LogLevel::kTrace, args...);
  }
  template <typename... Args>
  void debug(const Args&... args) const {
    log(LogLevel::kDebug, args...);
  }
  template <typename... Args>
  void info(const Args&... args) const {
    log(LogLevel::kInfo, args...);
  }
  template <typename... Args>
  void warn(const Args&... args) const {
    log(LogLevel::kWarn, args...);
  }
  template <typename... Args>
  void error(const Args&... args) const {
    log(LogLevel::kError, args...);
  }

  [[nodiscard]] const std::string& component() const { return component_; }

 private:
  template <typename... Args>
  void log(LogLevel lvl, const Args&... args) const {
    if (!enabled(lvl)) {
      return;
    }
    std::ostringstream oss;
    (oss << ... << args);
    emit(lvl, oss.str());
  }

  void emit(LogLevel lvl, const std::string& message) const;

  const Kernel* kernel_;
  std::string component_;
};

std::string_view to_string(LogLevel lvl);

}  // namespace sv::sim

// InlineFunc: a fixed-size, allocation-free callable for the event hot path.
//
// Every event the kernel dispatches used to be a std::function<void()>.
// libstdc++'s std::function only stores captures up to 16 bytes inline;
// anything larger — a coroutine handle plus a couple of fields, a pool
// handle with bookkeeping — costs one heap allocation and one free per
// scheduled event. At tens of millions of events per second that malloc
// traffic is the single largest kernel overhead (see DESIGN.md §11).
//
// InlineFunc stores the callable in a 48-byte inline buffer, full stop:
// there is no heap fallback. A capture that does not fit is a compile
// error, which turns "audit every scheduling site" into something the
// compiler enforces. Sites that want to move bulky state (a net::Packet)
// through an event capture a pool handle instead (net::PacketPool).
//
// Move-only, like the events it carries (captures may own resources).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace sv::sim {

class InlineFunc {
 public:
  /// Inline capture capacity. sizeof(InlineFunc) == kCapacity + two
  /// pointers == 64. Every current capture is at most a few pointers and
  /// integers; the static_assert below flags any site that outgrows this.
  static constexpr std::size_t kCapacity = 48;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  InlineFunc() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunc> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFunc(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= kCapacity,
                  "InlineFunc: capture too large for the inline buffer — "
                  "shrink the capture or move the state through a pool "
                  "handle (see net::PacketPool)");
    static_assert(alignof(D) <= kAlign,
                  "InlineFunc: capture over-aligned for the inline buffer");
    static_assert(std::is_move_constructible_v<D>,
                  "InlineFunc: capture must be move-constructible");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    invoke_ = [](void* s) { (*static_cast<D*>(s))(); };
    // Most captures are a few pointers and integers: trivially copyable,
    // trivially destructible. Those keep manage_ == nullptr and relocate
    // by plain memcpy with nothing to destroy — no indirect call per
    // queue move, which the wheel/heap do several times per event.
    if constexpr (!(std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>)) {
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {  // relocate: move-construct dst, destroy src
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        } else {  // destroy dst
          static_cast<D*>(dst)->~D();
        }
      };
    }
  }

  InlineFunc(InlineFunc&& o) noexcept
      : invoke_(o.invoke_), manage_(o.manage_) {
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(storage_, o.storage_);
      } else {
        std::memcpy(storage_, o.storage_, kCapacity);
      }
      o.invoke_ = nullptr;
      o.manage_ = nullptr;
    }
  }

  InlineFunc& operator=(InlineFunc&& o) noexcept {
    if (this != &o) {
      reset();
      invoke_ = o.invoke_;
      manage_ = o.manage_;
      if (invoke_ != nullptr) {
        if (manage_ != nullptr) {
          manage_(storage_, o.storage_);
        } else {
          std::memcpy(storage_, o.storage_, kCapacity);
        }
        o.invoke_ = nullptr;
        o.manage_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunc(const InlineFunc&) = delete;
  InlineFunc& operator=(const InlineFunc&) = delete;

  ~InlineFunc() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void reset() {
    if (manage_ != nullptr) {
      manage_(storage_, nullptr);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  using Invoke = void (*)(void*);
  using Manage = void (*)(void* dst, void* src);

  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  alignas(kAlign) unsigned char storage_[kCapacity];
};

static_assert(sizeof(InlineFunc) == 64, "one cache line per callable");

}  // namespace sv::sim

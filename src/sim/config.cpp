#include "sim/config.hpp"

#include <stdexcept>

namespace sv::sim {

Config Config::from_args(const std::vector<std::string>& args) {
  Config cfg;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("Config: expected key=value, got: " + arg);
    }
    cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return cfg;
}

void Config::set_u64(const std::string& key, std::uint64_t value) {
  values_[key] = std::to_string(value);
}

void Config::set_double(const std::string& key, double value) {
  values_[key] = std::to_string(value);
}

void Config::set_bool(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

std::string Config::get_string(const std::string& key,
                               const std::string& def) const {
  auto it = values_.find(key);
  return it != values_.end() ? it->second : def;
}

std::uint64_t Config::get_u64(const std::string& key,
                              std::uint64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  return std::stoull(it->second, nullptr, 0);
}

double Config::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  return std::stod(it->second);
}

bool Config::get_bool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  throw std::invalid_argument("Config: bad bool for " + key + ": " + v);
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) {
    values_[k] = v;
  }
}

}  // namespace sv::sim

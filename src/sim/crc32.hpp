// CRC-32 (the IEEE 802.3 polynomial, reflected form 0xEDB88320), used by the
// reliable-delivery layer to detect payload corruption injected on the wire.
// Table-driven; the table is built once at namespace-scope initialisation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sv::sim {

/// CRC of `data`, optionally continuing from a previous partial `crc`
/// (pass the return value of an earlier call to chain buffers).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data,
                                  std::uint32_t crc = 0);

}  // namespace sv::sim

// Sparse functional byte storage backing DRAM and SRAM models.
//
// Timing lives in the bus/controller models; BackingStore is purely
// functional so every simulated data movement is real and checkable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace sv::ckpt {
class Writer;
}  // namespace sv::ckpt

namespace sv::mem {

using Addr = std::uint64_t;

class BackingStore {
 public:
  static constexpr std::size_t kPageBytes = 4096;

  /// Read `out.size()` bytes at `addr`. Unwritten bytes read as zero.
  void read(Addr addr, std::span<std::byte> out) const;

  /// Write `in.size()` bytes at `addr`.
  void write(Addr addr, std::span<const std::byte> in);

  /// Convenience scalar accessors (little-endian in host memory).
  template <typename T>
  [[nodiscard]] T read_scalar(Addr addr) const {
    T v{};
    read(addr, std::as_writable_bytes(std::span(&v, 1)));
    return v;
  }

  template <typename T>
  void write_scalar(Addr addr, const T& v) {
    write(addr, std::as_bytes(std::span(&v, 1)));
  }

  /// Fill a range with a byte value.
  void fill(Addr addr, std::size_t len, std::byte value);

  [[nodiscard]] std::size_t allocated_pages() const { return pages_.size(); }

  /// Snapshot digest: page count plus a CRC-32 over (index, bytes) of every
  /// allocated page in ascending index order. The hash map's own iteration
  /// order is host-dependent, so the digest sorts first — a snapshot must
  /// be a pure function of simulated state (DESIGN.md §14). Bulk payload is
  /// digested rather than dumped raw; a single flipped byte still fails
  /// restore verification.
  void ckpt_save(ckpt::Writer& w) const;

 private:
  using Page = std::vector<std::byte>;

  [[nodiscard]] const Page* find_page(Addr page_index) const;
  Page& get_page(Addr page_index);

  std::unordered_map<Addr, Page> pages_;
  // One-entry lookup cache: accesses are overwhelmingly sequential, so
  // most hash lookups repeat the previous page. Node pointers are stable
  // under insertion and nothing erases, so the cache never goes stale
  // (mutable: caching inside const read() is not observable).
  mutable Addr last_index_ = ~Addr{0};
  mutable Page* last_page_ = nullptr;
};

}  // namespace sv::mem

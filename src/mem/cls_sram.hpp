// clsSRAM: the single-ported SRAM holding 4 state bits per main-memory cache
// line. The aBIU reads it combinationally for every aP bus operation (the
// read is part of the snoop path and costs no extra time); updates go
// through its single port.
//
// The 4-bit value is protocol-defined: the S-COMA firmware uses it as
// cache-line state, and the aBIU's reaction table maps (bus op, cls bits) to
// {retry, pass-to-sP} decisions.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/bus.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"

namespace sv::ckpt {
class Writer;
}  // namespace sv::ckpt

namespace sv::mem {

class ClsSram : public sim::SimObject {
 public:
  struct Params {
    Addr region_base = 0;   // first address covered
    Addr region_size = 0;   // bytes covered (state kept per kLineBytes line)
    sim::Clock clock{15000};
    sim::Cycles write_cycles = 1;
  };

  ClsSram(sim::Kernel& kernel, std::string name, Params params);

  [[nodiscard]] bool covers(Addr a) const {
    return a >= params_.region_base &&
           a < params_.region_base + params_.region_size;
  }

  /// Combinational read used on the snoop path (no simulated time).
  [[nodiscard]] std::uint8_t peek(Addr a) const;

  /// Functional write (used by tests and for initialization).
  void poke(Addr a, std::uint8_t bits);

  /// Install the power-on value of every line as a pure function of its
  /// address, discarding any prior pokes. This is how firmware "writes the
  /// whole SRAM" in O(1): storage stays empty and only lines later poked
  /// to a different value materialize (per 4KB chunk). The function must
  /// stay valid for the SRAM's lifetime and return 4-bit values —
  /// value-capture what it needs.
  void set_default(std::function<std::uint8_t(Addr)> fn);

  /// Chunks whose backing bytes exist (pokes materialize chunks on first
  /// divergence from the default). Scale memory tests pin idle cost here.
  [[nodiscard]] std::size_t chunks_materialized() const {
    std::size_t n = 0;
    for (const auto& c : chunks_) {
      n += c ? 1 : 0;
    }
    return n;
  }

  /// Timed write through the single port (used by aBIU/CTRL commands).
  sim::Co<void> write_state(Addr a, std::uint8_t bits);

  /// Timed write of a contiguous range of lines.
  sim::Co<void> write_state_range(Addr base, Addr size, std::uint8_t bits);

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const sim::Counter& writes() const { return writes_; }

  /// Snapshot state: write count plus a digest of the full per-line state
  /// array (the coherence-protocol ground truth for the S-COMA window).
  void ckpt_save(ckpt::Writer& w) const;

 private:
  /// Lines per materialized chunk (4KB of state bytes).
  static constexpr std::size_t kChunkLines = 4096;
  using Chunk = std::array<std::uint8_t, kChunkLines>;

  [[nodiscard]] std::size_t index_of(Addr a) const;
  [[nodiscard]] std::uint8_t default_of(std::size_t line) const {
    return default_fn_
               ? static_cast<std::uint8_t>(
                     default_fn_(params_.region_base +
                                 static_cast<Addr>(line) * kLineBytes) &
                     0x0F)
               : 0;
  }
  /// Allocate chunk c and fill it with each line's default value.
  Chunk& materialize_chunk(std::size_t c);

  Params params_;
  std::size_t lines_;  // region_size / kLineBytes
  /// Sparse state: chunks_[i] covers lines [i*kChunkLines, ...); a null
  /// chunk reads as the default function applied per line. The effective
  /// array (and therefore the checkpoint digest) is identical to the old
  /// eagerly-allocated vector.
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::function<std::uint8_t(Addr)> default_fn_;
  sim::Semaphore port_;
  sim::Counter writes_;
};

}  // namespace sv::mem

// clsSRAM: the single-ported SRAM holding 4 state bits per main-memory cache
// line. The aBIU reads it combinationally for every aP bus operation (the
// read is part of the snoop path and costs no extra time); updates go
// through its single port.
//
// The 4-bit value is protocol-defined: the S-COMA firmware uses it as
// cache-line state, and the aBIU's reaction table maps (bus op, cls bits) to
// {retry, pass-to-sP} decisions.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/bus.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"

namespace sv::ckpt {
class Writer;
}  // namespace sv::ckpt

namespace sv::mem {

class ClsSram : public sim::SimObject {
 public:
  struct Params {
    Addr region_base = 0;   // first address covered
    Addr region_size = 0;   // bytes covered (state kept per kLineBytes line)
    sim::Clock clock{15000};
    sim::Cycles write_cycles = 1;
  };

  ClsSram(sim::Kernel& kernel, std::string name, Params params);

  [[nodiscard]] bool covers(Addr a) const {
    return a >= params_.region_base &&
           a < params_.region_base + params_.region_size;
  }

  /// Combinational read used on the snoop path (no simulated time).
  [[nodiscard]] std::uint8_t peek(Addr a) const;

  /// Functional write (used by tests and for initialization).
  void poke(Addr a, std::uint8_t bits);

  /// Timed write through the single port (used by aBIU/CTRL commands).
  sim::Co<void> write_state(Addr a, std::uint8_t bits);

  /// Timed write of a contiguous range of lines.
  sim::Co<void> write_state_range(Addr base, Addr size, std::uint8_t bits);

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const sim::Counter& writes() const { return writes_; }

  /// Snapshot state: write count plus a digest of the full per-line state
  /// array (the coherence-protocol ground truth for the S-COMA window).
  void ckpt_save(ckpt::Writer& w) const;

 private:
  [[nodiscard]] std::size_t index_of(Addr a) const;

  Params params_;
  std::vector<std::uint8_t> state_;
  sim::Semaphore port_;
  sim::Counter writes_;
};

}  // namespace sv::mem

// NIU SRAM banks.
//
// aSRAM and sSRAM are dual-ported: one port faces a 604 bus (through the
// corresponding BIU), the other faces the NIU's internal bus (IBus, mastered
// by CTRL). Each port serializes its own accesses but the two ports proceed
// independently, exactly the property the NIU exploits to let CTRL stream
// message data while a processor composes the next message.
#pragma once

#include <cstdint>
#include <string>

#include "mem/backing_store.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace sv::mem {

class DualPortedSram : public sim::SimObject {
 public:
  enum class Port : std::uint8_t { kBus = 0, kIBus = 1 };

  struct Params {
    Addr size = 128 * 1024;     // bytes per bank
    sim::Clock clock{15000};    // SRAM access clock (bus-rate)
    sim::Cycles access_cycles = 1;  // per 8-byte word
  };

  DualPortedSram(sim::Kernel& kernel, std::string name, Params params);

  [[nodiscard]] Addr size() const { return params_.size; }

  /// Occupy `port` for the time needed to move `bytes` bytes. Callers pair
  /// this with the functional read()/write() below.
  sim::Co<void> access(Port port, std::uint32_t bytes);

  /// Functional storage (offsets are bank-relative).
  void read(Addr offset, std::span<std::byte> out) const;
  void write(Addr offset, std::span<const std::byte> in);

  template <typename T>
  [[nodiscard]] T read_scalar(Addr offset) const {
    return store_.read_scalar<T>(offset);
  }
  template <typename T>
  void write_scalar(Addr offset, const T& v) {
    store_.write_scalar<T>(offset, v);
  }

  [[nodiscard]] const sim::BusyTracker& port_busy(Port port) const {
    return busy_[static_cast<int>(port)];
  }

  /// Snapshot state: port busy times plus the bank contents digest.
  void ckpt_save(ckpt::Writer& w) const;

 private:
  Params params_;
  BackingStore store_;
  sim::Semaphore port_sems_[2];
  sim::BusyTracker busy_[2];
};

}  // namespace sv::mem

#include "mem/cache.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "ckpt/stats_io.hpp"
#include "sim/crc32.hpp"

namespace sv::mem {

std::string_view to_string(MesiState s) {
  switch (s) {
    case MesiState::kInvalid:
      return "I";
    case MesiState::kShared:
      return "S";
    case MesiState::kExclusive:
      return "E";
    case MesiState::kModified:
      return "M";
  }
  return "?";
}

SnoopingCache::SnoopingCache(sim::Kernel& kernel, std::string name,
                             MemBus& bus, Params params)
    : sim::SimObject(kernel, std::move(name)),
      bus_(bus),
      bus_id_(bus.attach(this)),
      params_(params),
      op_mutex_(kernel, 1) {
  const std::size_t lines = params_.size_bytes / kLineBytes;
  const std::size_t num_sets = std::max<std::size_t>(1, lines / params_.ways);
  // Sets materialize lazily (see materialize_set): a 512KB cache is ~0.75MB
  // of Line storage, which dominates an idle node's footprint at scale. An
  // empty set reads as all-invalid everywhere (find_line and ckpt_save
  // iterate what exists), so laziness is invisible to behavior and digests.
  sets_.resize(num_sets);
}

std::size_t SnoopingCache::set_index(Addr addr) const {
  return static_cast<std::size_t>((addr / kLineBytes) % sets_.size());
}

std::size_t SnoopingCache::chunk_count(Addr addr, std::size_t size) {
  if (size == 0) {
    return 0;
  }
  return static_cast<std::size_t>(
      (addr % kLineBytes + size + kLineBytes - 1) / kLineBytes);
}

SnoopingCache::Line* SnoopingCache::find_line(Addr addr) {
  const Addr tag = line_base(addr);
  for (Line& line : sets_[set_index(addr)]) {
    if (line.state != MesiState::kInvalid && line.tag == tag) {
      return &line;
    }
  }
  return nullptr;
}

const SnoopingCache::Line* SnoopingCache::find_line(Addr addr) const {
  const Addr tag = line_base(addr);
  for (const Line& line : sets_[set_index(addr)]) {
    if (line.state != MesiState::kInvalid && line.tag == tag) {
      return &line;
    }
  }
  return nullptr;
}

SnoopingCache::Line& SnoopingCache::choose_victim(std::size_t set) {
  materialize_set(set);
  Line* victim = nullptr;
  for (Line& line : sets_[set]) {
    if (line.state == MesiState::kInvalid) {
      return line;
    }
    if (victim == nullptr || line.lru < victim->lru) {
      victim = &line;
    }
  }
  return *victim;
}

MesiState SnoopingCache::probe(Addr addr) const {
  const Line* line = find_line(addr);
  return line ? line->state : MesiState::kInvalid;
}

void SnoopingCache::purge_range(Addr addr, std::size_t len) {
  revoke_batches();
  const Addr first = line_base(addr);
  const Addr last = line_base(addr + len - 1);
  for (Addr a = first; a <= last; a += kLineBytes) {
    if (Line* line = find_line(a)) {
      line->state = MesiState::kInvalid;
      line->push_pending = false;
    }
  }
}

sim::Co<void> SnoopingCache::write_back(Line& line, std::size_t set) {
  (void)set;
  // Detach the data first so the line can be reused while the writeback
  // transaction is in flight.
  std::array<std::byte, kLineBytes> data = line.data;
  const Addr addr = line.tag;
  line.state = MesiState::kInvalid;
  stats_.writebacks.inc();
  BusRequest req;
  req.op = BusOp::kWriteLine;
  req.addr = addr;
  req.size = kLineBytes;
  req.wdata = data.data();
  co_await bus_.transact_retry(bus_id_, req);
}

sim::Co<SnoopingCache::Line*> SnoopingCache::fill_line(Addr line_addr,
                                                       BusOp op) {
  assert(op == BusOp::kRead || op == BusOp::kRWITM);
  const std::size_t set = set_index(line_addr);
  Line& victim = choose_victim(set);
  if (victim.state == MesiState::kModified) {
    co_await write_back(victim, set);
  } else {
    victim.state = MesiState::kInvalid;
  }

  std::array<std::byte, kLineBytes> buf{};
  BusRequest req;
  req.op = op;
  req.addr = line_addr;
  req.size = kLineBytes;
  req.rdata = buf.data();
  req.from_ap = true;
  const BusResult res = co_await bus_.transact_retry(bus_id_, req);

  victim.tag = line_addr;
  victim.data = buf;
  victim.push_pending = false;
  if (op == BusOp::kRWITM) {
    victim.state = MesiState::kExclusive;  // promoted to M by the write
  } else {
    victim.state = res.shared ? MesiState::kShared : MesiState::kExclusive;
  }
  touch(victim);
  co_return &victim;
}

sim::Co<void> SnoopingCache::read(Addr addr, std::span<std::byte> out,
                                  std::uint64_t chunk_seqs) {
  revoke_batches();
  if (chunk_seqs == kAutoSeqs) {
    // Reserve one dispatch key per chunk at entry so the sequence stream is
    // a function of the access alone, not of which chunks hit.
    chunk_seqs = kernel_.reserve_seqs(chunk_count(addr, out.size()));
  }
  co_await op_mutex_.acquire();
  std::size_t done = 0;
  std::uint64_t seq = chunk_seqs;
  while (done < out.size()) {
    const Addr a = addr + done;
    const Addr base = line_base(a);
    const std::size_t offset = a - base;
    const std::size_t chunk =
        std::min(out.size() - done, kLineBytes - offset);

    Line* line = find_line(a);
    if (line != nullptr) {
      co_await sim::seq_delay(kernel_, now() + hit_ticks(), seq);
      // Counted at the chunk-completion key, not the probe: the batched
      // fast path commits (and counts) at exactly this (tick, seq), so a
      // run that stops mid-access dumps the same value in both modes.
      stats_.read_hits.inc();
    } else {
      // Miss: the chunk's reserved key goes unused (the fill's bus phases
      // reserve their own) — an identical hole in every mode.
      stats_.read_misses.inc();
      line = co_await fill_line(base, BusOp::kRead);
    }
    std::memcpy(out.data() + done, line->data.data() + offset, chunk);
    touch(*line);
    done += chunk;
    ++seq;
  }
  op_mutex_.release();
}

sim::Co<void> SnoopingCache::write(Addr addr, std::span<const std::byte> in,
                                   std::uint64_t chunk_seqs) {
  revoke_batches();
  if (chunk_seqs == kAutoSeqs) {
    chunk_seqs = kernel_.reserve_seqs(chunk_count(addr, in.size()));
  }
  co_await op_mutex_.acquire();
  std::size_t done = 0;
  std::uint64_t seq = chunk_seqs;
  while (done < in.size()) {
    const Addr a = addr + done;
    const Addr base = line_base(a);
    const std::size_t offset = a - base;
    const std::size_t chunk = std::min(in.size() - done, kLineBytes - offset);

    Line* line = find_line(a);
    if (line != nullptr &&
        (line->state == MesiState::kModified ||
         line->state == MesiState::kExclusive)) {
      co_await sim::seq_delay(kernel_, now() + hit_ticks(), seq);
      stats_.write_hits.inc();  // completion key, matching batch_commit
    } else if (line != nullptr && line->state == MesiState::kShared) {
      // Upgrade: broadcast a kill so other holders drop their copies.
      stats_.write_hits.inc();
      stats_.upgrades.inc();
      BusRequest req;
      req.op = BusOp::kKill;
      req.addr = base;
      req.size = 0;
      req.from_ap = true;
      co_await bus_.transact_retry(bus_id_, req);
      // The line may have been invalidated while the kill was queued
      // (a competing RWITM won); re-check and fall back to a fill.
      line = find_line(a);
      if (line == nullptr) {
        line = co_await fill_line(base, BusOp::kRWITM);
      }
    } else {
      stats_.write_misses.inc();
      line = co_await fill_line(base, BusOp::kRWITM);
    }
    std::memcpy(line->data.data() + offset, in.data() + done, chunk);
    line->state = MesiState::kModified;
    touch(*line);
    done += chunk;
    ++seq;
  }
  op_mutex_.release();
}

sim::Co<void> SnoopingCache::flush_line(Addr addr) {
  revoke_batches();
  co_await op_mutex_.acquire();
  Line* line = find_line(addr);
  if (line != nullptr) {
    if (line->state == MesiState::kModified) {
      co_await write_back(*line, set_index(addr));
    } else {
      line->state = MesiState::kInvalid;
    }
  } else {
    // Not ours: broadcast a flush so any other owner pushes it back.
    BusRequest req;
    req.op = BusOp::kFlush;
    req.addr = line_base(addr);
    req.size = kLineBytes;
    co_await bus_.transact_retry(bus_id_, req);
  }
  op_mutex_.release();
}

sim::Co<void> SnoopingCache::invalidate_line(Addr addr) {
  revoke_batches();
  co_await op_mutex_.acquire();
  if (Line* line = find_line(addr)) {
    line->state = MesiState::kInvalid;
  }
  op_mutex_.release();
}

sim::Co<void> SnoopingCache::flush_range(Addr addr, std::size_t len) {
  const Addr first = line_base(addr);
  const Addr last = line_base(addr + len - 1);
  for (Addr a = first; a <= last; a += kLineBytes) {
    co_await flush_line(a);
  }
}

// --- Processor quantum-batch support ---------------------------------------

void* SnoopingCache::batch_begin(Addr addr, std::size_t size, bool is_write) {
  if (op_mutex_.available() != 1 || chunk_count(addr, size) != 1) {
    return nullptr;
  }
  Line* line = find_line(addr);
  if (line == nullptr) {
    return nullptr;
  }
  if (is_write && line->state != MesiState::kModified &&
      line->state != MesiState::kExclusive) {
    return nullptr;  // S needs an upgrade kill, I a fill: slow path
  }
  const bool got = op_mutex_.try_acquire();
  assert(got);
  (void)got;
  return line;
}

void SnoopingCache::batch_abort() {
  // Nobody can be queued on the mutex: it was free at engagement and every
  // acquirer since calls the revoke hook (which runs this) first — so the
  // release is a plain count increment, consuming no sequence numbers.
  op_mutex_.release();
}

void SnoopingCache::batch_commit(void* line_handle, Addr addr,
                                 std::byte* rdata, const std::byte* wdata,
                                 std::size_t size) {
  // Commit blindly through the handle captured at engagement — mirroring
  // the slow path, which captures its Line* before the hit delay and
  // memcpys after, whatever bus observes did to the state meanwhile.
  Line* line = static_cast<Line*>(line_handle);
  const std::size_t offset = addr - line_base(addr);
  if (rdata != nullptr) {
    stats_.read_hits.inc();
    std::memcpy(rdata, line->data.data() + offset, size);
  } else {
    stats_.write_hits.inc();
    std::memcpy(line->data.data() + offset, wdata, size);
    line->state = MesiState::kModified;
  }
  touch(*line);
  op_mutex_.release();
}

// --- Snooping side ---------------------------------------------------------

SnoopResult SnoopingCache::bus_snoop(const BusRequest& req) {
  Line* line = find_line(req.addr);
  if (line == nullptr) {
    return {};
  }
  switch (req.op) {
    case BusOp::kRead:
    case BusOp::kReadSingle:
    case BusOp::kRWITM:
      if (line->state == MesiState::kModified) {
        return {SnoopAction::kModified, params_.intervention_cycles};
      }
      return {SnoopAction::kShared, 0};
    case BusOp::kFlush:
      if (line->state == MesiState::kModified) {
        return {SnoopAction::kModified, params_.intervention_cycles};
      }
      return {SnoopAction::kShared, 0};
    case BusOp::kWriteSingle:
    case BusOp::kWriteLine:
    case BusOp::kKill:
      if (line->state == MesiState::kModified) {
        // Another master wants to overwrite or kill a line we hold dirty:
        // retry it and push the line back to memory first (60x snoop push).
        if (!line->push_pending) {
          line->push_pending = true;
          stats_.snoop_pushes.inc();
          sim::spawn(snoop_push(line->tag));
        }
        return {SnoopAction::kRetry, 0};
      }
      return {SnoopAction::kShared, 0};
  }
  return {};
}

sim::Co<void> SnoopingCache::snoop_push(Addr line_addr) {
  // Runs independently of processor-side operations, like a real snoop
  // buffer. Re-check the line when we get to run: it may already be gone.
  Line* line = find_line(line_addr);
  if (line == nullptr || line->state != MesiState::kModified) {
    if (line != nullptr) {
      line->push_pending = false;
    }
    co_return;
  }
  std::array<std::byte, kLineBytes> data = line->data;
  BusRequest req;
  req.op = BusOp::kWriteLine;
  req.addr = line_addr;
  req.size = kLineBytes;
  req.wdata = data.data();
  co_await bus_.transact_retry(bus_id_, req);
  // Invalidate after the push lands (we kept intervening meanwhile).
  line = find_line(line_addr);
  if (line != nullptr) {
    line->state = MesiState::kInvalid;
    line->push_pending = false;
  }
  stats_.writebacks.inc();
}

void SnoopingCache::bus_read_data(const BusRequest& req,
                                  std::span<std::byte> out) {
  // We are supplying intervention data for a line we hold modified.
  const Line* line = find_line(req.addr);
  assert(line != nullptr && line->state == MesiState::kModified);
  const std::size_t offset = req.addr - line_base(req.addr);
  assert(offset + out.size() <= kLineBytes);
  std::memcpy(out.data(), line->data.data() + offset, out.size());
  stats_.snoop_interventions.inc();
}

void SnoopingCache::bus_write_data(const BusRequest& req,
                                   std::span<const std::byte> in) {
  (void)req;
  (void)in;
  assert(false && "cache is never the addressed responder for writes");
}

void SnoopingCache::bus_observe(const BusRequest& req, const BusResult& res) {
  (void)res;
  Line* line = find_line(req.addr);
  if (line == nullptr) {
    return;
  }
  switch (req.op) {
    case BusOp::kRead:
    case BusOp::kReadSingle:
      // Someone read a copy: downgrade exclusive/modified to shared
      // (modified data was reflected to memory by the bus).
      if (line->state == MesiState::kModified ||
          line->state == MesiState::kExclusive) {
        line->state = MesiState::kShared;
      }
      break;
    case BusOp::kRWITM:
    case BusOp::kKill:
    case BusOp::kFlush:
      if (line->state == MesiState::kModified && req.op == BusOp::kKill) {
        // Handled via snoop push; the kill was retried, so if we are here
        // the push has completed and the line is no longer modified.
        break;
      }
      line->state = MesiState::kInvalid;
      stats_.snoop_invalidates.inc();
      break;
    case BusOp::kWriteSingle:
    case BusOp::kWriteLine:
      // The memory copy changed under us; drop our (clean) copy.
      if (line->state != MesiState::kModified) {
        line->state = MesiState::kInvalid;
        stats_.snoop_invalidates.inc();
      }
      break;
  }
}

void SnoopingCache::ckpt_save(ckpt::Writer& w) const {
  ckpt::save(w, stats_.read_hits);
  ckpt::save(w, stats_.read_misses);
  ckpt::save(w, stats_.write_hits);
  ckpt::save(w, stats_.write_misses);
  ckpt::save(w, stats_.writebacks);
  ckpt::save(w, stats_.upgrades);
  ckpt::save(w, stats_.snoop_invalidates);
  ckpt::save(w, stats_.snoop_interventions);
  ckpt::save(w, stats_.snoop_pushes);
  w.u64(lru_clock_);
  std::uint64_t valid = 0;
  std::uint32_t crc = 0;
  for (std::size_t si = 0; si < sets_.size(); ++si) {
    for (std::size_t way = 0; way < sets_[si].size(); ++way) {
      const Line& line = sets_[si][way];
      if (line.state == MesiState::kInvalid) {
        continue;
      }
      ++valid;
      const std::uint64_t key[4] = {si, way, line.tag, line.lru};
      crc = sim::crc32(std::as_bytes(std::span(key)), crc);
      const auto st = static_cast<std::uint8_t>(line.state);
      crc = sim::crc32(std::as_bytes(std::span(&st, 1)), crc);
      crc = sim::crc32(std::as_bytes(std::span(line.data)), crc);
    }
  }
  w.u64(valid);
  w.u32(crc);
}

}  // namespace sv::mem

#include "mem/bus.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace sv::mem {

std::string_view to_string(BusOp op) {
  switch (op) {
    case BusOp::kRead:
      return "Read";
    case BusOp::kRWITM:
      return "RWITM";
    case BusOp::kWriteLine:
      return "WriteLine";
    case BusOp::kReadSingle:
      return "ReadSingle";
    case BusOp::kWriteSingle:
      return "WriteSingle";
    case BusOp::kKill:
      return "Kill";
    case BusOp::kFlush:
      return "Flush";
  }
  return "?";
}

void BusDevice::bus_read_data(const BusRequest& req,
                              std::span<std::byte> out) {
  (void)req;
  (void)out;
  throw std::logic_error(std::string(device_name()) +
                         ": bus_read_data not implemented");
}

void BusDevice::bus_write_data(const BusRequest& req,
                               std::span<const std::byte> in) {
  (void)req;
  (void)in;
  throw std::logic_error(std::string(device_name()) +
                         ": bus_write_data not implemented");
}

MemBus::MemBus(sim::Kernel& kernel, std::string name, Params params)
    : sim::SimObject(kernel, std::move(name)),
      params_(params),
      addr_bus_(kernel, 1),
      data_bus_(kernel, 1) {}

int MemBus::attach(BusDevice* dev) {
  devices_.push_back(dev);
  return static_cast<int>(devices_.size()) - 1;
}

trace::Tracer* MemBus::trace_target() {
  trace::Tracer* tr = kernel_.tracer();
  if (tr == nullptr || !tr->enabled()) {
    return nullptr;
  }
  if (trace_track_ == trace::kNoTrack) {
    trace_track_ = tr->track_for(name(), "bus");
  }
  return tr;
}

sim::Co<void> MemBus::wait_cycles(sim::Cycles c) {
  co_await sim::delay(kernel_, params_.clock.to_ticks(c));
}

sim::Co<void> MemBus::align_to_edge() {
  co_await sim::delay(kernel_, params_.clock.until_next_edge(now()));
}

sim::Co<BusResult> MemBus::transact(int requester_id, BusRequest req) {
  req.requester = requester_id;
  const sim::Tick start = now();

  // --- Address tenure -----------------------------------------------------
  co_await addr_bus_.acquire();
  co_await align_to_edge();
  co_await wait_cycles(params_.address_cycles);

  BusResult res;
  SnoopResult winner;          // the responder's snoop result
  int accept_device = -1;      // device that claimed the address (memory)
  sim::Cycles accept_latency = 0;
  int modified_device = -1;    // device performing intervention
  sim::Cycles modified_latency = 0;
  bool retry = false;

  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (static_cast<int>(i) == requester_id) {
      continue;
    }
    const SnoopResult sr = devices_[i]->bus_snoop(req);
    switch (sr.action) {
      case SnoopAction::kIgnore:
        break;
      case SnoopAction::kAccept:
        assert(accept_device < 0 && "multiple devices claimed one address");
        accept_device = static_cast<int>(i);
        accept_latency = sr.latency;
        break;
      case SnoopAction::kShared:
        res.shared = true;
        break;
      case SnoopAction::kModified:
        assert(modified_device < 0 && "multiple modified owners");
        modified_device = static_cast<int>(i);
        modified_latency = sr.latency;
        break;
      case SnoopAction::kRetry:
        retry = true;
        break;
    }
  }
  addr_bus_.release();

  stats_.transactions.inc();
  if (retry) {
    stats_.retries.inc();
    res.retried = true;
    if (trace::Tracer* tr = trace_target()) {
      tr->instant(trace_track_,
                  "ARTRY " + std::string(to_string(req.op)), now());
    }
    co_return res;
  }

  // Intervention: a dirty snooper overrides the addressed responder.
  int responder = accept_device;
  sim::Cycles latency = accept_latency;
  if (modified_device >= 0) {
    responder = modified_device;
    latency = modified_latency;
    res.intervened = true;
    res.shared = true;
    stats_.interventions.inc();
  }
  res.responder = responder;

  if (op_address_only(req.op) || (req.op == BusOp::kFlush && !res.intervened)) {
    // Kill, or a flush that found no dirty copy: no data tenure.
    stats_.address_only.inc();
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      if (static_cast<int>(i) != requester_id) {
        devices_[i]->bus_observe(req, res);
      }
    }
    stats_.latency_ps.sample(now() - start);
    co_return res;
  }

  if (responder < 0) {
    res.no_responder = true;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      if (static_cast<int>(i) != requester_id) {
        devices_[i]->bus_observe(req, res);
      }
    }
    stats_.latency_ps.sample(now() - start);
    co_return res;
  }

  // --- Data tenure ----------------------------------------------------------
  co_await data_bus_.acquire();
  const sim::Tick data_start = now();
  const sim::Cycles beats =
      (req.size + kBeatBytes - 1) / kBeatBytes > 0
          ? (req.size + kBeatBytes - 1) / kBeatBytes
          : 1;
  co_await wait_cycles(latency + beats);
  stats_.data_beats.inc(beats);
  stats_.data_busy.add_busy(now() - data_start);
  if (trace::Tracer* tr = trace_target()) {
    // One span per data tenure: their sum is exactly data_busy, so trace
    // occupancy reproduces the StatRegistry bus occupancy.
    tr->span(trace_track_, std::string(to_string(req.op)), data_start, now());
  }

  if (req.op == BusOp::kFlush) {
    // The dirty owner pushes the line back to memory.
    assert(res.intervened);
    std::byte line[kLineBytes];
    std::span<std::byte> buf(line, req.size);
    devices_[responder]->bus_read_data(req, buf);
    if (accept_device >= 0) {
      devices_[accept_device]->bus_write_data(req, buf);
    }
  } else if (op_reads_data(req.op)) {
    assert(req.rdata != nullptr);
    std::span<std::byte> buf(req.rdata, req.size);
    devices_[responder]->bus_read_data(req, buf);
    if (res.intervened && req.op == BusOp::kRead && accept_device >= 0) {
      // Intervention data is reflected into memory so the previously dirty
      // line becomes clean-shared system-wide.
      devices_[accept_device]->bus_write_data(req, buf);
    }
  } else if (op_writes_data(req.op)) {
    assert(req.wdata != nullptr);
    std::span<const std::byte> buf(req.wdata, req.size);
    devices_[responder]->bus_write_data(req, buf);
  }
  data_bus_.release();

  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (static_cast<int>(i) != requester_id) {
      devices_[i]->bus_observe(req, res);
    }
  }
  stats_.latency_ps.sample(now() - start);
  co_return res;
}

sim::Co<BusResult> MemBus::transact_retry(int requester_id, BusRequest req,
                                          unsigned max_retries) {
  unsigned tries = 0;
  for (;;) {
    BusResult res = co_await transact(requester_id, req);
    if (!res.retried) {
      co_return res;
    }
    ++tries;
    if (max_retries != 0 && tries >= max_retries) {
      co_return res;
    }
    co_await wait_cycles(params_.retry_backoff);
  }
}

}  // namespace sv::mem

#include "mem/bus.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ckpt/stats_io.hpp"

namespace sv::mem {

std::string_view to_string(BusOp op) {
  switch (op) {
    case BusOp::kRead:
      return "Read";
    case BusOp::kRWITM:
      return "RWITM";
    case BusOp::kWriteLine:
      return "WriteLine";
    case BusOp::kReadSingle:
      return "ReadSingle";
    case BusOp::kWriteSingle:
      return "WriteSingle";
    case BusOp::kKill:
      return "Kill";
    case BusOp::kFlush:
      return "Flush";
  }
  return "?";
}

void BusDevice::bus_read_data(const BusRequest& req,
                              std::span<std::byte> out) {
  (void)req;
  (void)out;
  throw std::logic_error(std::string(device_name()) +
                         ": bus_read_data not implemented");
}

void BusDevice::bus_write_data(const BusRequest& req,
                               std::span<const std::byte> in) {
  (void)req;
  (void)in;
  throw std::logic_error(std::string(device_name()) +
                         ": bus_write_data not implemented");
}

MemBus::MemBus(sim::Kernel& kernel, std::string name, Params params)
    : sim::SimObject(kernel, std::move(name)),
      params_(params),
      addr_bus_(kernel, 1),
      data_bus_(kernel, 1) {}

int MemBus::attach(BusDevice* dev) {
  devices_.push_back(dev);
  return static_cast<int>(devices_.size()) - 1;
}

trace::Tracer* MemBus::trace_target() {
  trace::Tracer* tr = kernel_.tracer();
  if (tr == nullptr || !tr->enabled()) {
    return nullptr;
  }
  if (trace_track_ == trace::kNoTrack) {
    trace_track_ = tr->track_for(name(), "bus");
  }
  return tr;
}

sim::Co<void> MemBus::wait_cycles(sim::Cycles c) {
  co_await sim::delay(kernel_, params_.clock.to_ticks(c));
}

// --- Fast path (DESIGN.md §12) ---------------------------------------------

bool MemBus::fast_blockers() const {
  if (kernel_.fault_injector() != nullptr) {
    return true;
  }
  trace::Tracer* tr = kernel_.tracer();
  return tr != nullptr && tr->enabled();
}

bool MemBus::plan_fast(const BusRequest& req, std::uint64_t s0,
                       sim::Tick start, sim::Tick t1, sim::Tick t2) {
  if (fast_blockers()) {
    return false;
  }
  if (addr_bus_.available() != 1 || data_bus_.available() != 1 ||
      fast_rec_.wake_pending) {
    return false;
  }
  // Address-only ops and flushes stay slow: their control flow depends on
  // the live snoop outcome in ways the bypass does not model.
  if (op_address_only(req.op) || req.op == BusOp::kFlush) {
    return false;
  }
  int accept = -1;
  sim::Cycles accept_latency = 0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (static_cast<int>(i) == req.requester) {
      continue;
    }
    // Stable snoops are pure, so sampling them early equals sampling them
    // in the address tenure.
    SnoopResult sr;
    if (!devices_[i]->bus_fast_probe(req, &sr)) {
      return false;
    }
    if (sr.action == SnoopAction::kAccept) {
      if (accept >= 0) {
        return false;  // let the slow path's assert flag the double claim
      }
      accept = static_cast<int>(i);
      accept_latency = sr.latency;
    } else if (sr.action != SnoopAction::kIgnore) {
      return false;  // stability contract violated; stay safe
    }
  }
  if (accept < 0) {
    return false;
  }

  FastRecord& r = fast_rec_;
  assert(!r.live && "a live fast record implies a held address bus");
  const sim::Cycles beats =
      std::max<sim::Cycles>(1, (req.size + kBeatBytes - 1) / kBeatBytes);
  r.live = true;
  r.committed = false;
  ++r.gen;
  r.wake_phase = 0;
  r.s0 = s0;
  r.has_lead = req.lead_ticks > 0;
  r.t_lead = start;
  r.start = start;
  r.t1 = t1;
  r.t2 = t2;
  r.t3 = t2 + params_.clock.to_ticks(accept_latency + beats);
  r.beats = beats;
  r.accept_device = accept;
  r.req = req;
  r.res = BusResult{};
  r.res.responder = accept;

  const bool got = addr_bus_.try_acquire();
  assert(got);
  (void)got;
  kernel_.schedule_at_seq(r.t3, s0 + 2,
                          [this, gen = r.gen] { fast_complete(gen); });
  return true;
}

void MemBus::fast_complete(std::uint64_t gen) {
  FastRecord& r = fast_rec_;
  if (!r.live || r.gen != gen) {
    return;  // revoked; this event is dead
  }
  // Everything below reproduces the slow path's actions at its final
  // dispatch (t3, s0+2), in the same order, so downstream fresh-sequence
  // consumption (semaphore wakes, observer spawns) lines up exactly.
  stats_.transactions.inc();
  stats_.data_beats.inc(r.beats);
  stats_.data_busy.add_busy(r.t3 - r.t2);
  if (op_reads_data(r.req.op)) {
    devices_[r.accept_device]->bus_read_data(
        r.req, std::span<std::byte>(r.req.rdata, r.req.size));
  } else {
    devices_[r.accept_device]->bus_write_data(
        r.req, std::span<const std::byte>(r.req.wdata, r.req.size));
  }
  if (r.committed) {
    data_bus_.release();
  } else {
    // Never revoked: no other master ever arbitrated, so nobody queued on
    // the address bus and this release cannot wake anyone.
    addr_bus_.release();
  }
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (static_cast<int>(i) != r.req.requester) {
      devices_[i]->bus_observe(r.req, r.res);
    }
  }
  stats_.latency_ps.sample(r.t3 - r.start);
  ++fast_hits_;
  r.live = false;
  r.wake_phase = 0;
  // Resume last: the continuation may start new transactions that re-use
  // the record. transact() copies the result out before control returns.
  r.waiter.resume();
}

void MemBus::fast_wake() {
  // The record is already marked dead; hand control back to the coroutine,
  // which continues on the slow path from the reserved phase point it was
  // woken at (wake_phase tells it which). Clearing wake_pending first
  // releases the record for re-engagement — the resumed continuation may
  // start new transactions.
  fast_rec_.wake_pending = false;
  fast_rec_.waiter.resume();
}

void MemBus::revoke_fastpaths() {
  if (!params_.fastpath) {
    return;
  }
  if (live_device_fast_ != 0) {
    for (BusDevice* d : devices_) {
      d->fastpath_revoke();
    }
  }
  FastRecord& r = fast_rec_;
  if (!r.live || r.committed) {
    return;
  }
  const sim::Tick t = kernel_.now();
  const std::uint64_t s = kernel_.current_seq();
  if (r.has_lead &&
      (t < r.t_lead || (t == r.t_lead && s < r.s0 - 1))) {
    // Lead-in (issue/decode) window: the slow path would hold nothing yet,
    // so un-seize the address bus (nobody can be queued on it: it was free
    // at engagement and every acquirer since revokes first) and wake at
    // the lead key. The coroutine re-runs the slow path from arbitration —
    // behind the revoker, exactly as the slow schedule would order it.
    ++r.gen;
    r.wake_phase = 1;
    r.live = false;
    r.wake_pending = true;
    addr_bus_.release();
    kernel_.schedule_at_seq(r.t_lead, r.s0 - 1, [this] { fast_wake(); });
  } else if (t < r.t1 || (t == r.t1 && s < r.s0)) {
    // Arbitration window: cancel the completion and resume the coroutine
    // at the align edge — exactly where the slow path's first phase event
    // would have dispatched. The address bus stays held, as it would be.
    ++r.gen;
    r.wake_phase = 2;
    r.live = false;
    r.wake_pending = true;
    kernel_.schedule_at_seq(r.t1, r.s0, [this] { fast_wake(); });
  } else if (t < r.t2 || (t == r.t2 && s < r.s0 + 1)) {
    // Address tenure in progress: resume at its end and re-run the snoop
    // window live (the revoker may change what snoopers answer).
    ++r.gen;
    r.wake_phase = 3;
    r.live = false;
    r.wake_pending = true;
    kernel_.schedule_at_seq(r.t2, r.s0 + 1, [this] { fast_wake(); });
  } else {
    // Address tenure complete: this is a commit, not a revocation. Move
    // the resource state to what the slow path would hold during a data
    // tenure (address bus free, data bus held); the completion event
    // stays live and finishes on the slow schedule.
    r.committed = true;
    addr_bus_.release();
    const bool got = data_bus_.try_acquire();
    assert(got && "data bus must be free while a fast record is live");
    (void)got;
  }
}

// --- Transactions ----------------------------------------------------------

sim::Co<BusResult> MemBus::transact(int requester_id, BusRequest req) {
  req.requester = requester_id;
  // Entry is the revocation choke point: any new master (or any operation
  // that could invalidate a fast path's assumptions) passes through here
  // before arbitrating, so in-flight bypasses fold back onto the slow
  // schedule before this transaction can observe anything.
  revoke_fastpaths();
  const sim::Tick lead = req.lead_ticks;
  // Issue time: where the slow path finishes the requester's folded-in
  // lead (work/decode) delay and begins arbitrating. Latency stats are
  // measured from here, so fused and unfused callers sample identically.
  const sim::Tick start = now() + lead;
  // Reserve the dispatch keys of all timed phases up front — in BOTH
  // modes — so fast and slow runs issue identical sequence numbers at
  // identical program points. This pins the global dispatch order, which
  // is the entire bit-identity argument (DESIGN.md §12). A folded lead
  // delay adds one key (s0 - 1) ahead of the three phase keys.
  const std::uint64_t s_base = kernel_.reserve_seqs(lead > 0 ? 4 : 3);
  const std::uint64_t s0 = lead > 0 ? s_base + 1 : s_base;
  const sim::Tick t1 = start + params_.clock.until_next_edge(start);
  const sim::Tick t2 = t1 + params_.clock.to_ticks(params_.address_cycles);

  int resume_phase = 0;
  if (params_.fastpath && plan_fast(req, s0, start, t1, t2)) {
    const int phase = co_await FastAwait{*this};
    if (phase == 0) {
      co_return fast_rec_.res;  // completed in one event
    }
    resume_phase = phase;  // revoked: continue on the slow path below
  }

  // --- Lead-in --------------------------------------------------------------
  if (resume_phase == 0 && lead > 0) {
    co_await sim::seq_delay(kernel_, start, s_base);
  }
  // --- Address tenure -------------------------------------------------------
  if (resume_phase <= 1) {
    co_await addr_bus_.acquire();
    co_await sim::seq_delay(
        kernel_, now() + params_.clock.until_next_edge(now()), s0);
  }
  if (resume_phase <= 2) {
    co_await sim::seq_delay(
        kernel_, now() + params_.clock.to_ticks(params_.address_cycles),
        s0 + 1);
  }

  BusResult res;
  int accept_device = -1;      // device that claimed the address (memory)
  sim::Cycles accept_latency = 0;
  int modified_device = -1;    // device performing intervention
  sim::Cycles modified_latency = 0;
  bool retry = false;

  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (static_cast<int>(i) == requester_id) {
      continue;
    }
    const SnoopResult sr = devices_[i]->bus_snoop(req);
    switch (sr.action) {
      case SnoopAction::kIgnore:
        break;
      case SnoopAction::kAccept:
        assert(accept_device < 0 && "multiple devices claimed one address");
        accept_device = static_cast<int>(i);
        accept_latency = sr.latency;
        break;
      case SnoopAction::kShared:
        res.shared = true;
        break;
      case SnoopAction::kModified:
        assert(modified_device < 0 && "multiple modified owners");
        modified_device = static_cast<int>(i);
        modified_latency = sr.latency;
        break;
      case SnoopAction::kRetry:
        retry = true;
        break;
    }
  }
  addr_bus_.release();

  stats_.transactions.inc();
  if (retry) {
    stats_.retries.inc();
    res.retried = true;
    if (trace::Tracer* tr = trace_target()) {
      tr->instant(trace_track_,
                  "ARTRY " + std::string(to_string(req.op)), now());
    }
    co_return res;
  }

  // Intervention: a dirty snooper overrides the addressed responder.
  int responder = accept_device;
  sim::Cycles latency = accept_latency;
  if (modified_device >= 0) {
    responder = modified_device;
    latency = modified_latency;
    res.intervened = true;
    res.shared = true;
    stats_.interventions.inc();
  }
  res.responder = responder;

  if (op_address_only(req.op) || (req.op == BusOp::kFlush && !res.intervened)) {
    // Kill, or a flush that found no dirty copy: no data tenure.
    stats_.address_only.inc();
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      if (static_cast<int>(i) != requester_id) {
        devices_[i]->bus_observe(req, res);
      }
    }
    stats_.latency_ps.sample(now() - start);
    co_return res;
  }

  if (responder < 0) {
    res.no_responder = true;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      if (static_cast<int>(i) != requester_id) {
        devices_[i]->bus_observe(req, res);
      }
    }
    stats_.latency_ps.sample(now() - start);
    co_return res;
  }

  // --- Data tenure ----------------------------------------------------------
  co_await data_bus_.acquire();
  const sim::Tick data_start = now();
  const sim::Cycles beats =
      std::max<sim::Cycles>(1, (req.size + kBeatBytes - 1) / kBeatBytes);
  co_await sim::seq_delay(
      kernel_, now() + params_.clock.to_ticks(latency + beats), s0 + 2);
  stats_.data_beats.inc(beats);
  stats_.data_busy.add_busy(now() - data_start);
  if (trace::Tracer* tr = trace_target()) {
    // One span per data tenure: their sum is exactly data_busy, so trace
    // occupancy reproduces the StatRegistry bus occupancy.
    tr->span(trace_track_, std::string(to_string(req.op)), data_start, now());
  }

  if (req.op == BusOp::kFlush) {
    // The dirty owner pushes the line back to memory.
    assert(res.intervened);
    std::byte line[kLineBytes];
    std::span<std::byte> buf(line, req.size);
    devices_[responder]->bus_read_data(req, buf);
    if (accept_device >= 0) {
      devices_[accept_device]->bus_write_data(req, buf);
    }
  } else if (op_reads_data(req.op)) {
    assert(req.rdata != nullptr);
    std::span<std::byte> buf(req.rdata, req.size);
    devices_[responder]->bus_read_data(req, buf);
    if (res.intervened && req.op == BusOp::kRead && accept_device >= 0) {
      // Intervention data is reflected into memory so the previously dirty
      // line becomes clean-shared system-wide.
      devices_[accept_device]->bus_write_data(req, buf);
    }
  } else if (op_writes_data(req.op)) {
    assert(req.wdata != nullptr);
    std::span<const std::byte> buf(req.wdata, req.size);
    devices_[responder]->bus_write_data(req, buf);
  }
  data_bus_.release();

  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (static_cast<int>(i) != requester_id) {
      devices_[i]->bus_observe(req, res);
    }
  }
  stats_.latency_ps.sample(now() - start);
  co_return res;
}

sim::Co<BusResult> MemBus::transact_retry(int requester_id, BusRequest req,
                                          unsigned max_retries) {
  unsigned tries = 0;
  for (;;) {
    BusResult res = co_await transact(requester_id, req);
    req.lead_ticks = 0;  // issue/decode work precedes only the first attempt
    if (!res.retried) {
      co_return res;
    }
    ++tries;
    if (max_retries != 0 && tries >= max_retries) {
      co_return res;
    }
    co_await wait_cycles(params_.retry_backoff);
  }
}

// --- Tenure coalescing ------------------------------------------------------

namespace {
/// Upper bound on tenures folded into one event. Bounds the per-burst
/// planning work and the quiet-window length the burst must prove.
constexpr std::size_t kMaxBurstLines = 64;
}  // namespace

sim::Co<std::size_t> MemBus::transact_burst(int requester_id, Addr addr,
                                            std::size_t lines,
                                            std::byte* rdata,
                                            const std::byte* wdata,
                                            bool from_ap) {
  assert((rdata != nullptr) != (wdata != nullptr));
  if (!params_.fastpath || lines < 2 || fast_blockers() ||
      addr_bus_.available() != 1 || data_bus_.available() != 1 ||
      fast_rec_.wake_pending) {
    co_return 0;
  }
  revoke_fastpaths();

  const BusOp op = rdata != nullptr ? BusOp::kRead : BusOp::kWriteLine;
  const std::size_t n = std::min(lines, kMaxBurstLines);
  const sim::Tick start = now();

  // Plan every tenure; bail to the per-tenure path on the first one whose
  // interference-freedom cannot be proven. Responder latency can differ
  // per line, so timing is accumulated tenure by tenure. The first tenure
  // pays the caller's alignment; each completion lands on a clock edge, so
  // later tenures align for free — the property that makes the whole burst
  // closed-form.
  std::vector<BurstTenure>& plan = burst_plan_;
  plan.clear();
  plan.reserve(n);

  const sim::Cycles beats = kLineBytes / kBeatBytes;
  sim::Tick t = start;
  BusRequest probe;
  probe.op = op;
  probe.size = kLineBytes;
  probe.requester = requester_id;
  probe.from_ap = from_ap;
  for (std::size_t li = 0; li < n; ++li) {
    probe.addr = addr + li * kLineBytes;
    int accept = -1;
    sim::Cycles accept_latency = 0;
    bool ok = true;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      if (static_cast<int>(i) == requester_id) {
        continue;
      }
      BusDevice* d = devices_[i];
      SnoopResult sr;
      if (!d->bus_fast_probe(probe, &sr) || !d->bus_observe_trivial(probe)) {
        ok = false;
        break;
      }
      if (sr.action == SnoopAction::kAccept) {
        if (accept >= 0) {
          ok = false;
          break;
        }
        accept = static_cast<int>(i);
        accept_latency = sr.latency;
      } else if (sr.action != SnoopAction::kIgnore) {
        ok = false;
        break;
      }
    }
    if (!ok || accept < 0 || !devices_[accept]->bus_data_pure(probe)) {
      break;
    }
    BurstTenure ten;
    const sim::Tick t1 = t + params_.clock.until_next_edge(t);
    ten.t2 = t1 + params_.clock.to_ticks(params_.address_cycles);
    ten.t3 = ten.t2 + params_.clock.to_ticks(accept_latency + beats);
    ten.accept = accept;
    plan.push_back(ten);
    t = ten.t3;
  }
  if (plan.size() < 2 || !kernel_.quiet_until(t)) {
    co_return 0;
  }

  // Committed. Reserve the same three keys per tenure the per-tenure path
  // would have (nothing else can dispatch inside the window, so the slow
  // run's reservations are consecutive too), and fold all completions
  // into one event at the last tenure's data-phase key.
  const std::size_t count = plan.size();
  const std::uint64_t s0 = kernel_.reserve_seqs(3 * count);
  const std::uint64_t last_seq = s0 + 3 * count - 1;
  const sim::Tick t_end = plan.back().t3;

  struct BurstAwait {
    MemBus& bus;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      bus.burst_rec_.waiter = h;
    }
    void await_resume() const noexcept {}
  };

  BurstRecord& b = burst_rec_;
  b.requester = requester_id;
  b.op = op;
  b.addr = addr;
  b.rdata = rdata;
  b.wdata = wdata;
  b.from_ap = from_ap;
  b.start = start;
  b.count = count;
  kernel_.schedule_at_seq(t_end, last_seq, [this] { burst_complete(); });
  co_await BurstAwait{*this};
  co_return count;
}

void MemBus::burst_complete() {
  // Replay every tenure's completion effects in order. All responders are
  // data-pure and all observers trivial, so nothing here schedules events —
  // stats and byte movement only — and the end state matches the
  // per-tenure run exactly.
  const BurstRecord& b = burst_rec_;
  sim::Tick prev = b.start;
  for (std::size_t li = 0; li < b.count; ++li) {
    const BurstTenure& ten = burst_plan_[li];
    BusRequest req;
    req.op = b.op;
    req.addr = b.addr + li * kLineBytes;
    req.size = kLineBytes;
    req.requester = b.requester;
    req.from_ap = b.from_ap;
    BusResult res;
    res.responder = ten.accept;
    stats_.transactions.inc();
    stats_.data_beats.inc(kLineBytes / kBeatBytes);
    stats_.data_busy.add_busy(ten.t3 - ten.t2);
    if (b.op == BusOp::kRead) {
      req.rdata = b.rdata + li * kLineBytes;
      devices_[ten.accept]->bus_read_data(
          req, std::span<std::byte>(req.rdata, kLineBytes));
    } else {
      req.wdata = b.wdata + li * kLineBytes;
      devices_[ten.accept]->bus_write_data(
          req, std::span<const std::byte>(req.wdata, kLineBytes));
    }
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      if (static_cast<int>(i) != b.requester) {
        devices_[i]->bus_observe(req, res);
      }
    }
    stats_.latency_ps.sample(ten.t3 - prev);
    prev = ten.t3;
  }
  fast_hits_ += b.count;
  // Resume last: the continuation may start a new burst that re-uses the
  // record.
  b.waiter.resume();
}

void MemBus::ckpt_save(ckpt::Writer& w) const {
  ckpt::save(w, stats_.transactions);
  ckpt::save(w, stats_.retries);
  ckpt::save(w, stats_.interventions);
  ckpt::save(w, stats_.address_only);
  ckpt::save(w, stats_.data_beats);
  ckpt::save(w, stats_.data_busy);
  ckpt::save(w, stats_.latency_ps);
  w.u64(fast_hits_);
}

}  // namespace sv::mem

// Split-transaction snooping memory bus (modelled after the PowerPC 60x bus
// the paper's nodes use).
//
// A transaction has an address tenure (arbitration + address/command cycle +
// snoop window) followed, unless retried, by a data tenure (64-bit data bus,
// one 8-byte beat per bus cycle, plus the responder's access latency). The
// address and data buses are separate resources, so the address tenure of a
// following transaction overlaps the data tenure of the current one, exactly
// like pipelined 60x operation.
//
// Every attached device snoops every address tenure. Snoop results implement
// the 60x shared / modified-intervention / ARTRY(retry) semantics that the
// NIU's S-COMA and NUMA support relies on: the aBIU can hold off the aP by
// retrying its reads until firmware has fetched remote data.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "mem/backing_store.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "trace/trace.hpp"

namespace sv::mem {

/// Cache-line size of the modelled 604e system.
inline constexpr std::size_t kLineBytes = 32;
/// Width of the data bus in bytes (64-bit 60x data bus).
inline constexpr std::size_t kBeatBytes = 8;

[[nodiscard]] constexpr Addr line_base(Addr a) {
  return a & ~static_cast<Addr>(kLineBytes - 1);
}

enum class BusOp : std::uint8_t {
  kRead,         // cacheable line read (burst)
  kRWITM,        // read with intent to modify (burst, invalidates others)
  kWriteLine,    // write with flush (full-line burst writeback)
  kReadSingle,   // uncached read, <= 8 bytes
  kWriteSingle,  // uncached write, <= 8 bytes
  kKill,         // address-only invalidate (DKill)
  kFlush,        // force writeback + invalidate of a line
};

[[nodiscard]] std::string_view to_string(BusOp op);

[[nodiscard]] constexpr bool op_reads_data(BusOp op) {
  return op == BusOp::kRead || op == BusOp::kRWITM ||
         op == BusOp::kReadSingle;
}

[[nodiscard]] constexpr bool op_writes_data(BusOp op) {
  return op == BusOp::kWriteLine || op == BusOp::kWriteSingle;
}

[[nodiscard]] constexpr bool op_address_only(BusOp op) {
  return op == BusOp::kKill;
}

enum class SnoopAction : std::uint8_t {
  kIgnore,    // address not mine, no copy held
  kAccept,    // I am the addressed responder (memory controller, NIU window)
  kShared,    // I hold a clean copy (drives SHD)
  kModified,  // I hold a dirty copy: intervention, I supply/absorb the data
  kRetry,     // ARTRY: abort the transaction, requester must retry
};

struct SnoopResult {
  SnoopAction action = SnoopAction::kIgnore;
  /// Responder-side access latency in bus cycles before the first data beat.
  sim::Cycles latency = 0;
};

struct BusRequest {
  BusOp op = BusOp::kRead;
  Addr addr = 0;
  std::uint32_t size = 0;
  /// Source buffer for write ops; must stay valid until completion.
  const std::byte* wdata = nullptr;
  /// Destination buffer for read ops; must stay valid until completion.
  std::byte* rdata = nullptr;
  /// Device id of the requester (set by MemBus::transact).
  int requester = -1;
  /// True when the transaction was initiated by the application processor
  /// (the aBIU's S-COMA/NUMA checks apply only to aP-initiated traffic).
  bool from_ap = false;
};

struct BusResult {
  bool retried = false;
  bool shared = false;        // some snooper holds a copy
  bool intervened = false;    // data supplied by a modified snooper
  bool no_responder = false;  // nobody claimed the address
  int responder = -1;
};

class BusDevice {
 public:
  virtual ~BusDevice() = default;

  [[nodiscard]] virtual std::string_view device_name() const = 0;

  /// Address-tenure snoop. Called for every transaction except the device's
  /// own. Must not suspend: snooping is combinational.
  virtual SnoopResult bus_snoop(const BusRequest& req) = 0;

  /// Data-tenure callbacks, invoked on the responder at the end of the data
  /// tenure. Default implementations abort (a device that never responds
  /// with kAccept/kModified need not override them).
  virtual void bus_read_data(const BusRequest& req, std::span<std::byte> out);
  virtual void bus_write_data(const BusRequest& req,
                              std::span<const std::byte> in);

  /// Called on every device except the requester after a transaction
  /// completes without retry (after the data tenure, if any). Used for
  /// invalidations and the BIUs' bus watching.
  virtual void bus_observe(const BusRequest& req, const BusResult& res) {
    (void)req;
    (void)res;
  }
};

struct BusStats {
  sim::Counter transactions;
  sim::Counter retries;
  sim::Counter interventions;
  sim::Counter address_only;
  sim::Counter data_beats;
  sim::BusyTracker data_busy;
  sim::Histogram latency_ps;  // request issue to completion
};

class MemBus : public sim::SimObject {
 public:
  struct Params {
    sim::Clock clock{15000};        // 66.67 MHz 60x bus
    sim::Cycles address_cycles = 2; // address tenure + snoop window
    sim::Cycles retry_backoff = 4;  // cycles before a retried op re-arbitrates
  };

  MemBus(sim::Kernel& kernel, std::string name, Params params);

  /// Attach a device; returns its device id (used as requester id).
  int attach(BusDevice* dev);

  [[nodiscard]] const sim::Clock& clock() const { return params_.clock; }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Run one bus transaction. The request's requester field is filled in
  /// from `requester_id`. Returns once the transaction completes or is
  /// retried (result.retried).
  sim::Co<BusResult> transact(int requester_id, BusRequest req);

  /// Issue and re-issue on ARTRY with backoff until the transaction
  /// completes. `max_retries` == 0 means unbounded (hardware semantics).
  /// With a bound, gives up and returns retried=true after that many tries.
  sim::Co<BusResult> transact_retry(int requester_id, BusRequest req,
                                    unsigned max_retries = 0);

  [[nodiscard]] const BusStats& stats() const { return stats_; }
  BusStats& stats() { return stats_; }

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

 private:
  sim::Co<void> wait_cycles(sim::Cycles c);
  sim::Co<void> align_to_edge();
  [[nodiscard]] trace::Tracer* trace_target();

  Params params_;
  std::vector<BusDevice*> devices_;
  sim::Semaphore addr_bus_;
  sim::Semaphore data_bus_;
  BusStats stats_;
  trace::TrackId trace_track_ = trace::kNoTrack;
};

}  // namespace sv::mem

// Split-transaction snooping memory bus (modelled after the PowerPC 60x bus
// the paper's nodes use).
//
// A transaction has an address tenure (arbitration + address/command cycle +
// snoop window) followed, unless retried, by a data tenure (64-bit data bus,
// one 8-byte beat per bus cycle, plus the responder's access latency). The
// address and data buses are separate resources, so the address tenure of a
// following transaction overlaps the data tenure of the current one, exactly
// like pipelined 60x operation.
//
// Every attached device snoops every address tenure. Snoop results implement
// the 60x shared / modified-intervention / ARTRY(retry) semantics that the
// NIU's S-COMA and NUMA support relies on: the aBIU can hold off the aP by
// retrying its reads until firmware has fetched remote data.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "mem/backing_store.hpp"
#include "sim/coro.hpp"
#include "sim/fastpath.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "trace/trace.hpp"

namespace sv::mem {

/// Cache-line size of the modelled 604e system.
inline constexpr std::size_t kLineBytes = 32;
/// Width of the data bus in bytes (64-bit 60x data bus).
inline constexpr std::size_t kBeatBytes = 8;

[[nodiscard]] constexpr Addr line_base(Addr a) {
  return a & ~static_cast<Addr>(kLineBytes - 1);
}

enum class BusOp : std::uint8_t {
  kRead,         // cacheable line read (burst)
  kRWITM,        // read with intent to modify (burst, invalidates others)
  kWriteLine,    // write with flush (full-line burst writeback)
  kReadSingle,   // uncached read, <= 8 bytes
  kWriteSingle,  // uncached write, <= 8 bytes
  kKill,         // address-only invalidate (DKill)
  kFlush,        // force writeback + invalidate of a line
};

[[nodiscard]] std::string_view to_string(BusOp op);

[[nodiscard]] constexpr bool op_reads_data(BusOp op) {
  return op == BusOp::kRead || op == BusOp::kRWITM ||
         op == BusOp::kReadSingle;
}

[[nodiscard]] constexpr bool op_writes_data(BusOp op) {
  return op == BusOp::kWriteLine || op == BusOp::kWriteSingle;
}

[[nodiscard]] constexpr bool op_address_only(BusOp op) {
  return op == BusOp::kKill;
}

enum class SnoopAction : std::uint8_t {
  kIgnore,    // address not mine, no copy held
  kAccept,    // I am the addressed responder (memory controller, NIU window)
  kShared,    // I hold a clean copy (drives SHD)
  kModified,  // I hold a dirty copy: intervention, I supply/absorb the data
  kRetry,     // ARTRY: abort the transaction, requester must retry
};

struct SnoopResult {
  SnoopAction action = SnoopAction::kIgnore;
  /// Responder-side access latency in bus cycles before the first data beat.
  sim::Cycles latency = 0;
};

struct BusRequest {
  BusOp op = BusOp::kRead;
  Addr addr = 0;
  std::uint32_t size = 0;
  /// Source buffer for write ops; must stay valid until completion.
  const std::byte* wdata = nullptr;
  /// Destination buffer for read ops; must stay valid until completion.
  std::byte* rdata = nullptr;
  /// Device id of the requester (set by MemBus::transact).
  int requester = -1;
  /// True when the transaction was initiated by the application processor
  /// (the aBIU's S-COMA/NUMA checks apply only to aP-initiated traffic).
  bool from_ap = false;
  /// Requester-side lead-in (issue/decode work) folded into the
  /// transaction, in ticks. The slow path replays it as a reserved-key
  /// delay before arbitration; the fast path folds lead + address tenure +
  /// data tenure into its single completion event (DESIGN.md §12). Applies
  /// to the first issue only — transact_retry clears it before re-issuing.
  sim::Tick lead_ticks = 0;
};

struct BusResult {
  bool retried = false;
  bool shared = false;        // some snooper holds a copy
  bool intervened = false;    // data supplied by a modified snooper
  bool no_responder = false;  // nobody claimed the address
  int responder = -1;
};

class BusDevice {
 public:
  virtual ~BusDevice() = default;

  [[nodiscard]] virtual std::string_view device_name() const = 0;

  /// Address-tenure snoop. Called for every transaction except the device's
  /// own. Must not suspend: snooping is combinational.
  virtual SnoopResult bus_snoop(const BusRequest& req) = 0;

  /// Data-tenure callbacks, invoked on the responder at the end of the data
  /// tenure. Default implementations abort (a device that never responds
  /// with kAccept/kModified need not override them).
  virtual void bus_read_data(const BusRequest& req, std::span<std::byte> out);
  virtual void bus_write_data(const BusRequest& req,
                              std::span<const std::byte> in);

  /// Called on every device except the requester after a transaction
  /// completes without retry (after the data tenure, if any). Used for
  /// invalidations and the BIUs' bus watching.
  virtual void bus_observe(const BusRequest& req, const BusResult& res) {
    (void)req;
    (void)res;
  }

  // --- Fast-path contract (DESIGN.md §12) --------------------------------
  // All three predicates must be pure. Returning false is always safe (the
  // transaction takes the slow path); returning true is a promise.

  /// True when bus_snoop(req) is a pure function of static configuration:
  /// it returns kIgnore or kAccept (never Shared/Modified/Retry), has no
  /// side effects, and its answer cannot change except through a code path
  /// that re-enters MemBus::transact (which revokes in-flight fast paths).
  [[nodiscard]] virtual bool bus_snoop_stable(const BusRequest& req) const {
    (void)req;
    return false;
  }

  /// True when bus_observe(req, ...) would be a no-op for this request.
  /// Required for tenure coalescing, where observes of early tenures run
  /// at the end of the burst instead of at their own completion ticks.
  [[nodiscard]] virtual bool bus_observe_trivial(const BusRequest& req) const {
    (void)req;
    return false;
  }

  /// True when bus_read_data/bus_write_data for this request only move
  /// bytes and bump value-based counters — no event scheduling, no
  /// coroutine spawns. Required of the responder for tenure coalescing.
  [[nodiscard]] virtual bool bus_data_pure(const BusRequest& req) const {
    (void)req;
    return false;
  }

  /// Revoke any fast path this device has in flight (e.g. a processor's
  /// batched quantum). Called by MemBus::transact on entry — the choke
  /// point every interaction that could invalidate a fast path's
  /// assumptions goes through. Only invoked while the device has
  /// registered live fast state via MemBus::note_device_fast_state.
  virtual void fastpath_revoke() {}

  /// Combined eligibility probe: exactly bus_snoop_stable(req) followed by
  /// bus_snoop(req), fused so devices whose stability check and snoop share
  /// one lookup (the caches' line search) pay it once. Returns false when
  /// unstable; otherwise writes the snoop result and returns true.
  [[nodiscard]] virtual bool bus_fast_probe(const BusRequest& req,
                                            SnoopResult* out) {
    if (!bus_snoop_stable(req)) {
      return false;
    }
    *out = bus_snoop(req);
    return true;
  }
};

struct BusStats {
  sim::Counter transactions;
  sim::Counter retries;
  sim::Counter interventions;
  sim::Counter address_only;
  sim::Counter data_beats;
  sim::BusyTracker data_busy;
  sim::Histogram latency_ps;  // request issue to completion
};

class MemBus : public sim::SimObject {
 public:
  struct Params {
    sim::Clock clock{15000};        // 66.67 MHz 60x bus
    sim::Cycles address_cycles = 2; // address tenure + snoop window
    sim::Cycles retry_backoff = 4;  // cycles before a retried op re-arbitrates
    /// DMI-style bypass: contention-free transactions complete in a single
    /// kernel event at the analytically computed tick (DESIGN.md §12).
    /// Timing, stats and data movement are bit-identical either way;
    /// defaults off under SV_NO_FASTPATH=1.
    bool fastpath = sim::fastpath_default();
  };

  MemBus(sim::Kernel& kernel, std::string name, Params params);

  /// Attach a device; returns its device id (used as requester id).
  int attach(BusDevice* dev);

  [[nodiscard]] const sim::Clock& clock() const { return params_.clock; }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Run one bus transaction. The request's requester field is filled in
  /// from `requester_id`. Returns once the transaction completes or is
  /// retried (result.retried).
  sim::Co<BusResult> transact(int requester_id, BusRequest req);

  /// Issue and re-issue on ARTRY with backoff until the transaction
  /// completes. `max_retries` == 0 means unbounded (hardware semantics).
  /// With a bound, gives up and returns retried=true after that many tries.
  sim::Co<BusResult> transact_retry(int requester_id, BusRequest req,
                                    unsigned max_retries = 0);

  /// Tenure coalescing (DESIGN.md §12): run up to `lines` consecutive
  /// aligned full-line tenures (kRead when `rdata`, kWriteLine when
  /// `wdata`) as ONE kernel event, with per-tenure stats and data movement
  /// applied closed-form. Only succeeds when every tenure is provably
  /// interference-free: all snoopers stable, all observers trivial, the
  /// responder's data callbacks pure, and the kernel quiet through the
  /// last completion tick. Returns the number of tenures completed (0 =
  /// ineligible; the caller falls back to per-tenure transact calls, which
  /// consume the same sequence numbers the burst would have).
  sim::Co<std::size_t> transact_burst(int requester_id, Addr addr,
                                      std::size_t lines, std::byte* rdata,
                                      const std::byte* wdata, bool from_ap);

  /// Revoke every in-flight fast path on this bus (the bus's own bypassed
  /// transaction and any device-held fast state). Safe to call anywhere;
  /// a no-op when nothing is in flight.
  void revoke_fastpaths();

  /// True when neither bus resource is held or queued for — the state a
  /// processor quantum batch requires (an in-flight transaction could
  /// otherwise snoop or observe mid-batch without re-entering transact).
  [[nodiscard]] bool fast_quiescent() const {
    return addr_bus_.available() == 1 && data_bus_.available() == 1 &&
           !fast_rec_.wake_pending;
  }

  /// Transactions completed via the single-event bypass. Deliberately an
  /// accessor, not a StatRegistry entry: the count is zero in slow mode by
  /// construction, and the registry dump must stay byte-identical across
  /// modes.
  [[nodiscard]] std::uint64_t fast_path_hits() const { return fast_hits_; }

  /// Devices holding revocable fast state (a processor's live quantum
  /// batch) register it here (+1 on engage, -1 on complete/revoke) so
  /// transact entry can skip the whole-device revocation sweep — the
  /// common case — when nothing is live.
  void note_device_fast_state(int delta) { live_device_fast_ += delta; }

  [[nodiscard]] const BusStats& stats() const { return stats_; }
  BusStats& stats() { return stats_; }

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

  /// Snapshot state: transaction/retry/beat counters, occupancy, the
  /// latency histogram, and the bypass hit count. In-flight fast records
  /// are transient (at an epoch boundary no event is executing, but a
  /// bypassed transaction's completion event may be pending — its
  /// (when, seq) key is already captured by the kernel's event chunk).
  void ckpt_save(ckpt::Writer& w) const;

 private:
  /// In-flight bypassed transaction. At most one can exist per bus: the
  /// bypass requires both bus resources free and seizes the address bus,
  /// and any later transact() entry revokes it before arbitrating.
  struct FastRecord {
    bool live = false;
    bool committed = false;  // address tenure passed: addr released, data held
    /// A revocation wake is scheduled but has not yet resumed the waiter.
    /// The record (waiter slot, wake_phase) is still owned by the revoked
    /// transaction, so no new fast path or quantum batch may engage — the
    /// lead-window arm releases the address bus, which would otherwise
    /// look engageable while a transaction is still in flight.
    bool wake_pending = false;
    std::uint64_t gen = 0;   // liveness token for the completion event
    int wake_phase = 0;  // 0 completed; 1 resume at the lead key (re-run the
                         // slow path from arbitration); 2 resume at t1;
                         // 3 resume at t2
    std::uint64_t s0 = 0;    // first of the three reserved phase seqs
    bool has_lead = false;   // request carried a lead-in (lead key = s0 - 1)
    sim::Tick t_lead = 0;    // end of the lead-in window (= issue time)
    sim::Tick start = 0;     // issue time (lead-in excluded; latency basis)
    sim::Tick t1 = 0;        // align edge (end of arbitration)
    sim::Tick t2 = 0;        // end of address tenure / snoop window
    sim::Tick t3 = 0;        // end of data tenure (completion)
    sim::Cycles beats = 0;
    int accept_device = -1;
    BusRequest req;
    BusResult res;
    std::coroutine_handle<> waiter;
  };

  struct FastAwait {
    MemBus& bus;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      bus.fast_rec_.waiter = h;
    }
    int await_resume() const noexcept { return bus.fast_rec_.wake_phase; }
  };

  /// One planned tenure of an in-flight burst (transact_burst).
  struct BurstTenure {
    sim::Tick t2 = 0;  // end of address tenure
    sim::Tick t3 = 0;  // completion
    int accept = -1;
  };

  /// The (at most one) in-flight burst. No liveness token is needed: the
  /// proven quiet window means nothing can dispatch — and so nothing can
  /// revoke — before the completion event fires.
  struct BurstRecord {
    int requester = -1;
    BusOp op = BusOp::kRead;
    Addr addr = 0;
    std::byte* rdata = nullptr;
    const std::byte* wdata = nullptr;
    bool from_ap = false;
    sim::Tick start = 0;
    std::size_t count = 0;
    std::coroutine_handle<> waiter;
  };

  /// Check single-transaction bypass eligibility and, on success, engage:
  /// seize the address bus, fill fast_rec_ and schedule the completion
  /// event at (t3, s0+2).
  bool plan_fast(const BusRequest& req, std::uint64_t s0, sim::Tick start,
                 sim::Tick t1, sim::Tick t2);
  void fast_complete(std::uint64_t gen);
  void fast_wake();
  void burst_complete();

  sim::Co<void> wait_cycles(sim::Cycles c);
  [[nodiscard]] trace::Tracer* trace_target();
  [[nodiscard]] bool fast_blockers() const;

  Params params_;
  std::vector<BusDevice*> devices_;
  sim::Semaphore addr_bus_;
  sim::Semaphore data_bus_;
  BusStats stats_;
  std::uint64_t fast_hits_ = 0;
  int live_device_fast_ = 0;
  FastRecord fast_rec_;
  BurstRecord burst_rec_;
  /// Scratch plan for the (at most one) in-flight burst; reused across
  /// bursts so steady state stays allocation-free.
  std::vector<BurstTenure> burst_plan_;
  trace::TrackId trace_track_ = trace::kNoTrack;
};

}  // namespace sv::mem

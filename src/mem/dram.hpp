// DRAM / memory-controller model: the addressed responder for main-memory
// ranges on the node's memory bus.
#pragma once

#include <string_view>
#include <vector>

#include "mem/backing_store.hpp"
#include "mem/bus.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"

namespace sv::mem {

class DramCtrl : public sim::SimObject, public BusDevice {
 public:
  struct Range {
    Addr base = 0;
    Addr size = 0;
    [[nodiscard]] bool contains(Addr a) const {
      return a >= base && a < base + size;
    }
  };

  struct Params {
    std::vector<Range> ranges;       // address ranges this controller claims
    sim::Cycles read_latency = 6;    // bus cycles to first beat (~90 ns)
    sim::Cycles write_latency = 2;   // posting latency
  };

  DramCtrl(sim::Kernel& kernel, std::string name, Params params);

  // BusDevice:
  [[nodiscard]] std::string_view device_name() const override {
    return name();
  }
  SnoopResult bus_snoop(const BusRequest& req) override;
  void bus_read_data(const BusRequest& req,
                     std::span<std::byte> out) override;
  void bus_write_data(const BusRequest& req,
                      std::span<const std::byte> in) override;

  // Fast-path contract: the snoop is a pure range check, observe is the
  // base-class no-op, and the data callbacks only memcpy and bump counters.
  [[nodiscard]] bool bus_snoop_stable(const BusRequest&) const override {
    return true;
  }
  [[nodiscard]] bool bus_observe_trivial(const BusRequest&) const override {
    return true;
  }
  [[nodiscard]] bool bus_data_pure(const BusRequest&) const override {
    return true;
  }

  /// Functional backdoor for initialization and result checking ("the OS").
  [[nodiscard]] BackingStore& store() { return store_; }
  [[nodiscard]] const BackingStore& store() const { return store_; }

  [[nodiscard]] bool claims(Addr a) const;

  [[nodiscard]] const sim::Counter& reads() const { return reads_; }
  [[nodiscard]] const sim::Counter& writes() const { return writes_; }

  /// Snapshot state: access counters raw, contents as the store's digest.
  void ckpt_save(ckpt::Writer& w) const;

 private:
  Params params_;
  BackingStore store_;
  sim::Counter reads_;
  sim::Counter writes_;
};

}  // namespace sv::mem

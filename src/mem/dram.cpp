#include "mem/dram.hpp"

#include "ckpt/stats_io.hpp"

namespace sv::mem {

DramCtrl::DramCtrl(sim::Kernel& kernel, std::string name, Params params)
    : sim::SimObject(kernel, std::move(name)), params_(std::move(params)) {}

bool DramCtrl::claims(Addr a) const {
  for (const Range& r : params_.ranges) {
    if (r.contains(a)) {
      return true;
    }
  }
  return false;
}

SnoopResult DramCtrl::bus_snoop(const BusRequest& req) {
  if (!claims(req.addr)) {
    return {};
  }
  const sim::Cycles lat =
      op_writes_data(req.op) ? params_.write_latency : params_.read_latency;
  return SnoopResult{SnoopAction::kAccept, lat};
}

void DramCtrl::bus_read_data(const BusRequest& req,
                             std::span<std::byte> out) {
  reads_.inc();
  store_.read(req.addr, out);
}

void DramCtrl::bus_write_data(const BusRequest& req,
                              std::span<const std::byte> in) {
  writes_.inc();
  store_.write(req.addr, in);
}

void DramCtrl::ckpt_save(ckpt::Writer& w) const {
  ckpt::save(w, reads_);
  ckpt::save(w, writes_);
  store_.ckpt_save(w);
}

}  // namespace sv::mem

// Write-back snooping cache (MESI) modelling the aP's in-line L2 cache card.
//
// One cache instance serves one processor. The processor performs all of its
// cacheable accesses through read()/write(); uncacheable accesses bypass the
// cache and go to the bus directly. The cache participates in the bus snoop
// protocol: it supplies dirty data by intervention, downgrades on others'
// reads, and invalidates on kills/RWITMs — which is what makes the NIU's
// coherent shared-memory mechanisms (S-COMA, NUMA) work against an
// unmodified processor.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "mem/bus.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"

namespace sv::mem {

enum class MesiState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

[[nodiscard]] std::string_view to_string(MesiState s);

struct CacheStats {
  sim::Counter read_hits;
  sim::Counter read_misses;
  sim::Counter write_hits;
  sim::Counter write_misses;
  sim::Counter writebacks;
  sim::Counter upgrades;          // S -> M kill transactions
  sim::Counter snoop_invalidates;
  sim::Counter snoop_interventions;
  sim::Counter snoop_pushes;      // flush-on-uncached-write-hit
};

class SnoopingCache : public sim::SimObject, public BusDevice {
 public:
  struct Params {
    std::size_t size_bytes = 512 * 1024;
    std::size_t ways = 8;
    sim::Clock cpu_clock{6000};     // clock domain of hit latency
    sim::Cycles hit_cycles = 1;
    sim::Cycles intervention_cycles = 3;  // snoop-supply latency (bus cycles)
  };

  SnoopingCache(sim::Kernel& kernel, std::string name, MemBus& bus,
                Params params);

  /// Cacheable read of up to arbitrary length (split per line internally).
  sim::Co<void> read(Addr addr, std::span<std::byte> out);

  /// Cacheable write.
  sim::Co<void> write(Addr addr, std::span<const std::byte> in);

  /// dcbf: write back (if dirty) and invalidate one line.
  sim::Co<void> flush_line(Addr addr);

  /// dcbi: invalidate one line without writeback (discard).
  sim::Co<void> invalidate_line(Addr addr);

  /// Flush every line intersecting [addr, addr+len).
  sim::Co<void> flush_range(Addr addr, std::size_t len);

  /// State inspection for tests.
  [[nodiscard]] MesiState probe(Addr addr) const;

  /// Functional backdoor: discard every line intersecting [addr, addr+len)
  /// without writeback or timing. Used when a harness pokes DRAM contents
  /// directly (the "OS loader" path) and must drop stale cached copies.
  void purge_range(Addr addr, std::size_t len);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t set_count() const { return sets_.size(); }

  // BusDevice (snooping side):
  [[nodiscard]] std::string_view device_name() const override {
    return name();
  }
  SnoopResult bus_snoop(const BusRequest& req) override;
  void bus_read_data(const BusRequest& req,
                     std::span<std::byte> out) override;
  void bus_write_data(const BusRequest& req,
                      std::span<const std::byte> in) override;
  void bus_observe(const BusRequest& req, const BusResult& res) override;

 private:
  struct Line {
    Addr tag = 0;
    MesiState state = MesiState::kInvalid;
    std::uint64_t lru = 0;
    std::array<std::byte, kLineBytes> data{};
    bool push_pending = false;  // a snoop-push flush has been scheduled
  };
  using Set = std::vector<Line>;

  [[nodiscard]] std::size_t set_index(Addr addr) const;
  [[nodiscard]] Line* find_line(Addr addr);
  [[nodiscard]] const Line* find_line(Addr addr) const;
  Line& choose_victim(std::size_t set);
  void touch(Line& line) { line.lru = ++lru_clock_; }

  /// Bring a line in with the given bus op (kRead or kRWITM).
  sim::Co<Line*> fill_line(Addr line_addr, BusOp op);
  sim::Co<void> write_back(Line& line, std::size_t set);
  sim::Co<void> snoop_push(Addr line_addr);

  MemBus& bus_;
  int bus_id_;
  Params params_;
  std::vector<Set> sets_;
  std::uint64_t lru_clock_ = 0;
  sim::Semaphore op_mutex_;  // one processor-side operation at a time
  CacheStats stats_;
};

}  // namespace sv::mem

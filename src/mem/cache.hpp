// Write-back snooping cache (MESI) modelling the aP's in-line L2 cache card.
//
// One cache instance serves one processor. The processor performs all of its
// cacheable accesses through read()/write(); uncacheable accesses bypass the
// cache and go to the bus directly. The cache participates in the bus snoop
// protocol: it supplies dirty data by intervention, downgrades on others'
// reads, and invalidates on kills/RWITMs — which is what makes the NIU's
// coherent shared-memory mechanisms (S-COMA, NUMA) work against an
// unmodified processor.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "mem/bus.hpp"
#include "sim/coro.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"

namespace sv::mem {

enum class MesiState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

[[nodiscard]] std::string_view to_string(MesiState s);

struct CacheStats {
  sim::Counter read_hits;
  sim::Counter read_misses;
  sim::Counter write_hits;
  sim::Counter write_misses;
  sim::Counter writebacks;
  sim::Counter upgrades;          // S -> M kill transactions
  sim::Counter snoop_invalidates;
  sim::Counter snoop_interventions;
  sim::Counter snoop_pushes;      // flush-on-uncached-write-hit
};

class SnoopingCache : public sim::SimObject, public BusDevice {
 public:
  struct Params {
    std::size_t size_bytes = 512 * 1024;
    std::size_t ways = 8;
    sim::Clock cpu_clock{6000};     // clock domain of hit latency
    sim::Cycles hit_cycles = 1;
    sim::Cycles intervention_cycles = 3;  // snoop-supply latency (bus cycles)
  };

  SnoopingCache(sim::Kernel& kernel, std::string name, MemBus& bus,
                Params params);

  /// Sentinel for read/write's chunk_seqs: reserve sequence numbers here,
  /// at call entry. Callers that pre-reserve (the processor, so its quantum
  /// batch consumes the identical numbers) pass the reserved base instead.
  static constexpr std::uint64_t kAutoSeqs = ~std::uint64_t{0};

  /// Number of per-line chunks read()/write() split [addr, addr+size) into —
  /// and thus the number of sequence numbers each consumes (one per chunk;
  /// miss chunks leave theirs unused in every mode).
  [[nodiscard]] static std::size_t chunk_count(Addr addr, std::size_t size);

  /// Cacheable read of up to arbitrary length (split per line internally).
  sim::Co<void> read(Addr addr, std::span<std::byte> out,
                     std::uint64_t chunk_seqs = kAutoSeqs);

  /// Cacheable write.
  sim::Co<void> write(Addr addr, std::span<const std::byte> in,
                      std::uint64_t chunk_seqs = kAutoSeqs);

  /// dcbf: write back (if dirty) and invalidate one line.
  sim::Co<void> flush_line(Addr addr);

  /// dcbi: invalidate one line without writeback (discard).
  sim::Co<void> invalidate_line(Addr addr);

  /// Flush every line intersecting [addr, addr+len).
  sim::Co<void> flush_range(Addr addr, std::size_t len);

  /// State inspection for tests.
  [[nodiscard]] MesiState probe(Addr addr) const;

  /// Functional backdoor: discard every line intersecting [addr, addr+len)
  /// without writeback or timing. Used when a harness pokes DRAM contents
  /// directly (the "OS loader" path) and must drop stale cached copies.
  void purge_range(Addr addr, std::size_t len);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t set_count() const { return sets_.size(); }

  /// Sets whose way storage exists (fills materialize a set on first
  /// touch). An untouched cache reports 0 — the scale memory tests pin
  /// the idle-node footprint on this.
  [[nodiscard]] std::size_t sets_materialized() const {
    std::size_t n = 0;
    for (const Set& s : sets_) {
      n += s.empty() ? 0 : 1;
    }
    return n;
  }

  /// Snapshot state: hit/miss/snoop counters and the LRU clock raw, valid
  /// lines (tag, MESI state, LRU stamp, data) as a CRC-32 digest in
  /// (set, way) order.
  void ckpt_save(ckpt::Writer& w) const;

  // BusDevice (snooping side):
  [[nodiscard]] std::string_view device_name() const override {
    return name();
  }
  SnoopResult bus_snoop(const BusRequest& req) override;
  void bus_read_data(const BusRequest& req,
                     std::span<std::byte> out) override;
  void bus_write_data(const BusRequest& req,
                      std::span<const std::byte> in) override;
  void bus_observe(const BusRequest& req, const BusResult& res) override;

  // Fast-path contract: when we hold no line for the address, the snoop is
  // a pure miss and the observe a no-op — and a line can only appear via a
  // bus transaction, which revokes in-flight fast paths on entry.
  [[nodiscard]] bool bus_snoop_stable(const BusRequest& req) const override {
    return find_line(req.addr) == nullptr;
  }
  [[nodiscard]] bool bus_observe_trivial(const BusRequest& req) const override {
    return find_line(req.addr) == nullptr;
  }
  /// Fused stable+snoop: one line search instead of the default's two
  /// (stability implies a miss, and a miss snoops kIgnore).
  [[nodiscard]] bool bus_fast_probe(const BusRequest& req,
                                    SnoopResult* out) override {
    if (find_line(req.addr) != nullptr) {
      return false;
    }
    *out = SnoopResult{};
    return true;
  }

  // --- Processor quantum-batch support (DESIGN.md §12) --------------------
  // The processor folds a guaranteed single-chunk hit into one kernel event.
  // These helpers give it the pieces without exposing cache internals.

  /// Engage a batch: when [addr, addr+size) is a single-chunk guaranteed
  /// hit (line present; writes need M/E) and the cache is idle, acquire the
  /// operation mutex and return an opaque line handle; else return nullptr.
  /// The caller must finish with batch_commit() or batch_abort().
  [[nodiscard]] void* batch_begin(Addr addr, std::size_t size, bool is_write);

  /// Release the mutex of an engaged batch without side effects (early
  /// revocation: the caller re-runs the access on the slow path).
  void batch_abort();

  /// Complete an engaged batch: hit stats, byte movement, M on write,
  /// LRU touch, mutex release — exactly the slow hit path's actions at its
  /// post-delay dispatch. The line handle was captured at engagement and is
  /// committed blindly, mirroring the slow path's capture-across-delay.
  void batch_commit(void* line_handle, Addr addr, std::byte* rdata,
                    const std::byte* wdata, std::size_t size);

  /// Hit latency in ticks (the batch's only timed component).
  [[nodiscard]] sim::Tick hit_ticks() const {
    return params_.cpu_clock.to_ticks(params_.hit_cycles);
  }

  /// Install the owning processor's revocation hook. The cache calls it on
  /// entry to every path that could interleave with an in-flight batch
  /// (flush/invalidate/purge and direct read/write), before taking the
  /// operation mutex, so the batch folds back onto the slow schedule first.
  void set_fastpath_revoke(std::function<void()> hook) {
    revoke_hook_ = std::move(hook);
  }

 private:
  struct Line {
    Addr tag = 0;
    MesiState state = MesiState::kInvalid;
    std::uint64_t lru = 0;
    std::array<std::byte, kLineBytes> data{};
    bool push_pending = false;  // a snoop-push flush has been scheduled
  };
  using Set = std::vector<Line>;

  [[nodiscard]] std::size_t set_index(Addr addr) const;
  /// Allocate a set's ways on first line-creating access. All lines start
  /// invalid, which is indistinguishable from the set never existing.
  void materialize_set(std::size_t set) {
    if (sets_[set].empty()) {
      sets_[set].resize(params_.ways);
    }
  }
  [[nodiscard]] Line* find_line(Addr addr);
  [[nodiscard]] const Line* find_line(Addr addr) const;
  Line& choose_victim(std::size_t set);
  void touch(Line& line) { line.lru = ++lru_clock_; }

  /// Bring a line in with the given bus op (kRead or kRWITM).
  sim::Co<Line*> fill_line(Addr line_addr, BusOp op);
  sim::Co<void> write_back(Line& line, std::size_t set);
  sim::Co<void> snoop_push(Addr line_addr);

  MemBus& bus_;
  int bus_id_;
  Params params_;
  std::vector<Set> sets_;
  std::uint64_t lru_clock_ = 0;
  sim::Semaphore op_mutex_;  // one processor-side operation at a time
  CacheStats stats_;
  std::function<void()> revoke_hook_;

  void revoke_batches() {
    if (revoke_hook_) {
      revoke_hook_();
    }
  }
};

}  // namespace sv::mem

#include "mem/sram.hpp"

#include <stdexcept>

#include "ckpt/stats_io.hpp"

namespace sv::mem {

DualPortedSram::DualPortedSram(sim::Kernel& kernel, std::string name,
                               Params params)
    : sim::SimObject(kernel, std::move(name)),
      params_(params),
      port_sems_{sim::Semaphore(kernel, 1), sim::Semaphore(kernel, 1)} {}

sim::Co<void> DualPortedSram::access(Port port, std::uint32_t bytes) {
  auto& sem = port_sems_[static_cast<int>(port)];
  co_await sem.acquire();
  const sim::Cycles words = (bytes + 7) / 8 > 0 ? (bytes + 7) / 8 : 1;
  const sim::Tick dur = params_.clock.to_ticks(words * params_.access_cycles);
  busy_[static_cast<int>(port)].add_busy(dur);
  co_await sim::delay(kernel_, dur);
  sem.release();
}

void DualPortedSram::read(Addr offset, std::span<std::byte> out) const {
  if (offset + out.size() > params_.size) {
    throw std::out_of_range(name() + ": SRAM read out of range");
  }
  store_.read(offset, out);
}

void DualPortedSram::write(Addr offset, std::span<const std::byte> in) {
  if (offset + in.size() > params_.size) {
    throw std::out_of_range(name() + ": SRAM write out of range");
  }
  store_.write(offset, in);
}

void DualPortedSram::ckpt_save(ckpt::Writer& w) const {
  ckpt::save(w, busy_[0]);
  ckpt::save(w, busy_[1]);
  store_.ckpt_save(w);
}

}  // namespace sv::mem

#include "mem/backing_store.hpp"

#include <algorithm>
#include <cstring>

#include "ckpt/io.hpp"
#include "sim/crc32.hpp"

namespace sv::mem {

const BackingStore::Page* BackingStore::find_page(Addr page_index) const {
  if (page_index == last_index_ && last_page_ != nullptr) {
    return last_page_;
  }
  auto it = pages_.find(page_index);
  if (it == pages_.end()) {
    return nullptr;  // absent pages stay uncached: a write may create one
  }
  last_index_ = page_index;
  last_page_ = const_cast<Page*>(&it->second);
  return last_page_;
}

BackingStore::Page& BackingStore::get_page(Addr page_index) {
  if (page_index == last_index_ && last_page_ != nullptr) {
    return *last_page_;
  }
  auto [it, inserted] = pages_.try_emplace(page_index);
  if (inserted) {
    it->second.resize(kPageBytes);
  }
  last_index_ = page_index;
  last_page_ = &it->second;
  return it->second;
}

void BackingStore::read(Addr addr, std::span<std::byte> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const Addr a = addr + done;
    const Addr page_index = a / kPageBytes;
    const std::size_t offset = a % kPageBytes;
    const std::size_t chunk =
        std::min(out.size() - done, kPageBytes - offset);
    if (const Page* page = find_page(page_index)) {
      std::memcpy(out.data() + done, page->data() + offset, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
}

void BackingStore::write(Addr addr, std::span<const std::byte> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const Addr a = addr + done;
    const Addr page_index = a / kPageBytes;
    const std::size_t offset = a % kPageBytes;
    const std::size_t chunk = std::min(in.size() - done, kPageBytes - offset);
    Page& page = get_page(page_index);
    std::memcpy(page.data() + offset, in.data() + done, chunk);
    done += chunk;
  }
}

void BackingStore::fill(Addr addr, std::size_t len, std::byte value) {
  std::size_t done = 0;
  while (done < len) {
    const Addr a = addr + done;
    const Addr page_index = a / kPageBytes;
    const std::size_t offset = a % kPageBytes;
    const std::size_t chunk = std::min(len - done, kPageBytes - offset);
    Page& page = get_page(page_index);
    std::memset(page.data() + offset, static_cast<int>(value), chunk);
    done += chunk;
  }
}

void BackingStore::ckpt_save(ckpt::Writer& w) const {
  std::vector<Addr> indices;
  indices.reserve(pages_.size());
  for (const auto& [index, page] : pages_) {
    (void)page;
    indices.push_back(index);
  }
  std::sort(indices.begin(), indices.end());
  std::uint32_t crc = 0;
  for (const Addr index : indices) {
    crc = sim::crc32(std::as_bytes(std::span(&index, 1)), crc);
    crc = sim::crc32(pages_.at(index), crc);
  }
  w.u64(indices.size());
  w.u32(crc);
}

}  // namespace sv::mem

#include "mem/cls_sram.hpp"

#include <span>
#include <stdexcept>

#include "ckpt/io.hpp"
#include "sim/crc32.hpp"

namespace sv::mem {

ClsSram::ClsSram(sim::Kernel& kernel, std::string name, Params params)
    : sim::SimObject(kernel, std::move(name)),
      params_(params),
      lines_(params.region_size / kLineBytes),
      chunks_((lines_ + kChunkLines - 1) / kChunkLines),
      port_(kernel, 1) {}

std::size_t ClsSram::index_of(Addr a) const {
  if (!covers(a)) {
    throw std::out_of_range(name() + ": address outside clsSRAM region");
  }
  return static_cast<std::size_t>((a - params_.region_base) / kLineBytes);
}

ClsSram::Chunk& ClsSram::materialize_chunk(std::size_t c) {
  if (!chunks_[c]) {
    chunks_[c] = std::make_unique<Chunk>();
    const std::size_t base = c * kChunkLines;
    const std::size_t n = std::min(kChunkLines, lines_ - base);
    for (std::size_t i = 0; i < n; ++i) {
      (*chunks_[c])[i] = default_of(base + i);
    }
  }
  return *chunks_[c];
}

void ClsSram::set_default(std::function<std::uint8_t(Addr)> fn) {
  default_fn_ = std::move(fn);
  for (auto& c : chunks_) {
    c.reset();
  }
}

std::uint8_t ClsSram::peek(Addr a) const {
  const std::size_t line = index_of(a);
  const auto& chunk = chunks_[line / kChunkLines];
  return chunk ? (*chunk)[line % kChunkLines] : default_of(line);
}

void ClsSram::poke(Addr a, std::uint8_t bits) {
  const std::size_t line = index_of(a);
  bits &= 0x0F;
  if (!chunks_[line / kChunkLines] && bits == default_of(line)) {
    return;  // already reads back as `bits`: keep the chunk virtual
  }
  materialize_chunk(line / kChunkLines)[line % kChunkLines] = bits;
}

sim::Co<void> ClsSram::write_state(Addr a, std::uint8_t bits) {
  co_await port_.acquire();
  co_await sim::delay(kernel_, params_.clock.to_ticks(params_.write_cycles));
  poke(a, bits);
  writes_.inc();
  port_.release();
}

sim::Co<void> ClsSram::write_state_range(Addr base, Addr size,
                                         std::uint8_t bits) {
  co_await port_.acquire();
  const Addr first = line_base(base);
  const Addr last = line_base(base + size - 1);
  const sim::Cycles lines =
      static_cast<sim::Cycles>((last - first) / kLineBytes + 1);
  co_await sim::delay(kernel_,
                      params_.clock.to_ticks(lines * params_.write_cycles));
  for (Addr a = first; a <= last; a += kLineBytes) {
    poke(a, bits);
  }
  writes_.inc(lines);
  port_.release();
}

void ClsSram::ckpt_save(ckpt::Writer& w) const {
  w.u64(writes_.value());
  w.u64(lines_);
  // Digest the *effective* array — materialized chunks as stored, virtual
  // chunks expanded through the default function — in index order, so the
  // digest is byte-identical to the old eagerly-allocated layout.
  std::uint32_t crc = 0;
  Chunk scratch;
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const std::size_t base = c * kChunkLines;
    const std::size_t n = std::min(kChunkLines, lines_ - base);
    const std::uint8_t* bytes;
    if (chunks_[c]) {
      bytes = chunks_[c]->data();
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        scratch[i] = default_of(base + i);
      }
      bytes = scratch.data();
    }
    crc = sim::crc32(std::as_bytes(std::span(bytes, n)), crc);
  }
  w.u32(crc);
}

}  // namespace sv::mem

#include "mem/cls_sram.hpp"

#include <span>
#include <stdexcept>

#include "ckpt/io.hpp"
#include "sim/crc32.hpp"

namespace sv::mem {

ClsSram::ClsSram(sim::Kernel& kernel, std::string name, Params params)
    : sim::SimObject(kernel, std::move(name)),
      params_(params),
      state_(params.region_size / kLineBytes, 0),
      port_(kernel, 1) {}

std::size_t ClsSram::index_of(Addr a) const {
  if (!covers(a)) {
    throw std::out_of_range(name() + ": address outside clsSRAM region");
  }
  return static_cast<std::size_t>((a - params_.region_base) / kLineBytes);
}

std::uint8_t ClsSram::peek(Addr a) const {
  return state_[index_of(a)];
}

void ClsSram::poke(Addr a, std::uint8_t bits) {
  state_[index_of(a)] = bits & 0x0F;
}

sim::Co<void> ClsSram::write_state(Addr a, std::uint8_t bits) {
  co_await port_.acquire();
  co_await sim::delay(kernel_, params_.clock.to_ticks(params_.write_cycles));
  poke(a, bits);
  writes_.inc();
  port_.release();
}

sim::Co<void> ClsSram::write_state_range(Addr base, Addr size,
                                         std::uint8_t bits) {
  co_await port_.acquire();
  const Addr first = line_base(base);
  const Addr last = line_base(base + size - 1);
  const sim::Cycles lines =
      static_cast<sim::Cycles>((last - first) / kLineBytes + 1);
  co_await sim::delay(kernel_,
                      params_.clock.to_ticks(lines * params_.write_cycles));
  for (Addr a = first; a <= last; a += kLineBytes) {
    poke(a, bits);
  }
  writes_.inc(lines);
  port_.release();
}

void ClsSram::ckpt_save(ckpt::Writer& w) const {
  w.u64(writes_.value());
  w.u64(state_.size());
  w.u32(sim::crc32(std::as_bytes(std::span(state_))));
}

}  // namespace sv::mem

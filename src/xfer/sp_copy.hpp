// Approach-2 firmware: sP-managed block transfer (paper section 6).
//
// "The aP issues a request to the local sP, which takes over the
// responsibility of reading, packetizing, and sending out the packets.
// These packets are received by the destination sP, which moves the data
// into its final memory locations. ... command queue commands allow the
// data to be transferred directly between aP DRAM and aSRAM, and TagOn
// messages pick up the data and ship it across the network."
//
// Per 64-byte chunk the sending sP issues a kReadApDram into sSRAM staging
// and a kSendMessage whose SRAM attach (the TagOn path) carries the data;
// the receiving sP lands each chunk with a kWriteApDram. Both processors
// therefore never touch the data, but the sPs are occupied per chunk —
// exactly the occupancy profile the paper reports for approach 2.
#pragma once

#include "fw/firmware.hpp"
#include "sys/node.hpp"

namespace sv::xfer {

inline constexpr net::QueueId kSpCopyReqL = 0x0F06;
inline constexpr net::QueueId kSpCopyDataL = 0x0F07;
inline constexpr unsigned kSpCopyReqQ = 3;   // hardware rx queue
inline constexpr unsigned kSpCopyDataQ = 4;  // hardware rx queue
inline constexpr std::uint32_t kSpCopyChunk = 64;

struct SpCopyRequest {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint32_t len = 0;
  std::uint16_t dest_node = 0;
  net::QueueId completion_queue = 0;
  std::uint32_t tag = 0;
};

struct SpCopyDataHdr {
  std::uint64_t dst = 0;
  std::uint16_t last = 0;
  net::QueueId completion_queue = 0;
  std::uint32_t tag = 0;
};

class SpCopyEngine final : public fw::FwService {
 public:
  SpCopyEngine(sim::Kernel& kernel, std::string name, cpu::Processor& sp,
               niu::SBiu& sbiu, Costs costs = {});

  /// Bind the engine's two receive queues on a node (call once per node,
  /// any time after Node::setup()).
  static void bind_queues(sys::Node& node);

  void start() override;

 private:
  sim::Co<void> request_loop();
  sim::Co<void> data_loop();

  static constexpr std::uint32_t kStagingOffset = 0x11000;  // sSRAM scratch
};

}  // namespace sv::xfer

#include "xfer/approaches.hpp"

#include <cstring>

namespace sv::xfer {

namespace {

/// Approach-1 data message: 16-byte header + up to 64 bytes of data.
struct A1Hdr {
  std::uint64_t dst = 0;
  std::uint32_t n = 0;
  std::uint16_t last = 0;
  std::uint16_t _pad = 0;
};
constexpr std::uint32_t kA1Chunk = 64;

/// Approaches 4/5 stage through their own sSRAM area (after the DMA
/// engine's staging, which occupies 0x20000..0x22000).
constexpr std::uint32_t kA45Staging = 0x24000;

}  // namespace

BlockTransferHarness::BlockTransferHarness(sys::Machine& machine)
    : machine_(machine) {
  for (sim::NodeId n = 0; n < machine_.size(); ++n) {
    auto& node = machine_.node(n);
    endpoints_.push_back(
        std::make_unique<msg::Endpoint>(node.ap(), node.endpoint_config()));
    SpCopyEngine::bind_queues(node);
    sp_copy_.push_back(std::make_unique<SpCopyEngine>(
        machine_.kernel(), "n" + std::to_string(n) + ".fw.spcopy",
        node.sp(), node.niu().sbiu(), node.params().fw_costs));
    sp_copy_.back()->start();
    // Approaches 4/5: cls state kClsBlockPending retries without invoking
    // the S-COMA protocol.
    auto& abiu = node.niu().abiu();
    abiu.set_scoma_reaction(niu::OpClass::kLoad, kClsBlockPending,
                            {true, false});
    abiu.set_scoma_reaction(niu::OpClass::kStore, kClsBlockPending,
                            {true, false});
  }
}

void BlockTransferHarness::init_data(const TransferSpec& spec) {
  ++fill_;
  auto& src_store = machine_.node(spec.sender).dram().store();
  std::vector<std::byte> data(spec.len);
  for (std::uint32_t i = 0; i < spec.len; ++i) {
    data[i] = static_cast<std::byte>((i * 7 + fill_) & 0xFF);
  }
  src_store.write(spec.src, data);
  // Clear the destination so verification is meaningful.
  machine_.node(spec.receiver).dram().store().fill(spec.dst, spec.len,
                                                   std::byte{0});
  // The functional pokes above bypass bus coherence: drop any cached
  // copies left over from earlier transfers on the same addresses.
  machine_.node(spec.sender).cache().purge_range(spec.src, spec.len);
  machine_.node(spec.receiver).cache().purge_range(spec.dst, spec.len);
}

bool BlockTransferHarness::verify_data(const TransferSpec& spec) {
  std::vector<std::byte> got(spec.len);
  machine_.node(spec.receiver).dram().store().read(spec.dst, got);
  for (std::uint32_t i = 0; i < spec.len; ++i) {
    if (got[i] != static_cast<std::byte>((i * 7 + fill_) & 0xFF)) {
      return false;
    }
  }
  return true;
}

// --- Approach 1 ----------------------------------------------------------------

sim::Co<void> BlockTransferHarness::a1_sender(const TransferSpec& spec) {
  auto& ap = machine_.node(spec.sender).ap();
  auto& ep = endpoint(spec.sender);
  const auto map = machine_.addr_map();

  std::byte frame[sizeof(A1Hdr) + kA1Chunk];
  for (std::uint32_t off = 0; off < spec.len; off += kA1Chunk) {
    const std::uint32_t n = std::min(kA1Chunk, spec.len - off);
    A1Hdr hdr;
    hdr.dst = spec.dst + off;
    hdr.n = n;
    hdr.last = off + n >= spec.len ? 1 : 0;
    std::memcpy(frame, &hdr, sizeof(A1Hdr));
    // The aP reads the data itself: one bus crossing into the cache.
    co_await ap.load(spec.src + off,
                     std::span<std::byte>(frame + sizeof(A1Hdr), n));
    // ...and a second crossing when the composed message flushes to SRAM.
    co_await ep.send(map.user0(spec.receiver),
                     std::span<const std::byte>(frame, sizeof(A1Hdr) + n));
  }
}

sim::Co<void> BlockTransferHarness::a1_receiver(const TransferSpec& spec,
                                                sim::OneShot& notified) {
  auto& ap = machine_.node(spec.receiver).ap();
  auto& ep = endpoint(spec.receiver);
  for (;;) {
    msg::Message m = co_await ep.recv();
    A1Hdr hdr{};
    std::memcpy(&hdr, m.data.data(), sizeof(A1Hdr));
    co_await ap.store(hdr.dst, std::span<const std::byte>(
                                   m.data.data() + sizeof(A1Hdr), hdr.n));
    if (hdr.last != 0) {
      break;
    }
  }
  // Push the copied data out of the cache so DRAM holds it (the second
  // receiver-side bus crossing).
  co_await ap.flush_range(spec.dst, spec.len);
  notified.fire();
}

// --- Approach 2 ----------------------------------------------------------------

sim::Co<void> BlockTransferHarness::a2_sender(const TransferSpec& spec) {
  auto& ep = endpoint(spec.sender);
  SpCopyRequest req;
  req.src = spec.src;
  req.dst = spec.dst;
  req.len = spec.len;
  req.dest_node = static_cast<std::uint16_t>(spec.receiver);
  req.completion_queue = msg::AddressMap::kUser0L;
  req.tag = next_tag_++;
  co_await ep.send_raw(spec.sender, kSpCopyReqL, fw::to_bytes(req));
}

// --- Approach 3 ----------------------------------------------------------------

sim::Co<void> BlockTransferHarness::a3_sender(const TransferSpec& spec) {
  auto& ep = endpoint(spec.sender);
  co_await msg::dma_write(ep, machine_.addr_map(), spec.sender,
                          spec.receiver, spec.src, spec.dst, spec.len,
                          msg::AddressMap::kUser0L, next_tag_++);
}

// --- Approaches 4 and 5 -----------------------------------------------------------

sim::Co<void> BlockTransferHarness::a45_sender(const TransferSpec& spec,
                                               bool hardware_cls) {
  // Receiver-side preparation: close the destination lines so reads retry
  // until the data lands (the block-op unit can set cls ranges directly).
  auto& rx_node = machine_.node(spec.receiver);
  {
    auto& rsp = rx_node.sp();
    co_await rsp.acquire();
    co_await rsp.work(rx_node.params().fw_costs.handler);
    niu::Command close;
    close.op = niu::CmdOp::kWriteClsState;
    close.addr = spec.dst;
    close.len = spec.len;
    close.cls_bits = kClsBlockPending;
    co_await rx_node.niu().sbiu().immediate(std::move(close));
    rsp.release();
  }

  // Sender side: chunked block transfers; the first chunk ends at 1/4 of
  // the data and carries the (optimistic) completion notification.
  auto& tx_node = machine_.node(spec.sender);
  auto& sbiu = tx_node.niu().sbiu();
  auto& tsp = tx_node.sp();

  const std::uint32_t quarter = std::max<std::uint32_t>(
      32, (spec.len / 4) & ~31u);

  std::uint32_t off = 0;
  bool first = true;
  while (off < spec.len) {
    const std::uint32_t page_room = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(
            niu::kBlockMaxBytes - ((spec.src + off) % niu::kBlockMaxBytes),
            niu::kBlockMaxBytes - ((spec.dst + off) % niu::kBlockMaxBytes)));
    std::uint32_t n = std::min(spec.len - off, page_room);
    if (first) {
      n = std::min(n, quarter);
    }

    niu::Command cmd;
    cmd.op = niu::CmdOp::kBlockXfer;
    cmd.addr = spec.src + off;
    cmd.dest_addr = spec.dst + off;
    cmd.len = n;
    cmd.bank = niu::SramBank::kSSram;
    cmd.sram_offset = kA45Staging;
    cmd.dest_node = spec.receiver;
    // Serialize staging reuse across chunks: each command fences on the
    // completion of all previously issued block operations.
    cmd.fence = true;
    if (hardware_cls) {
      cmd.set_cls = true;                      // approach 5: aBIU extension
      cmd.cls_bits = niu::ABiu::kClsReadWrite;
    } else {
      cmd.chunk_notify = true;                 // approach 4: sP opens lines
    }
    if (first) {
      cmd.remote_notify = true;                // early notification
      cmd.remote_notify_queue = msg::AddressMap::kUser0L;
      cmd.remote_notify_tag = next_tag_++;
    }

    co_await tsp.acquire();
    co_await tsp.work(tx_node.params().fw_costs.handler);
    co_await sbiu.post(/*cmdq=*/1, std::move(cmd));
    tsp.release();

    off += n;
    first = false;
  }
}

// --- Shared receiver plumbing --------------------------------------------------------

sim::Co<void> BlockTransferHarness::wait_notify(sim::NodeId node,
                                                sim::OneShot& notified) {
  (void)node;
  msg::Message m = co_await endpoint(node).recv();
  (void)m;
  notified.fire();
}

sim::Co<void> BlockTransferHarness::consume_data(const TransferSpec& spec,
                                                 sim::Tick delay,
                                                 sim::OneShot& done) {
  auto& ap = machine_.node(spec.receiver).ap();
  if (delay > 0) {
    co_await sim::delay(machine_.kernel(), delay);
  }
  std::byte buf[mem::kLineBytes];
  for (std::uint32_t off = 0; off < spec.len; off += mem::kLineBytes) {
    co_await ap.load(spec.dst + off, buf);
  }
  done.fire();
}

// --- Driver -----------------------------------------------------------------------

TransferResult BlockTransferHarness::run(int approach,
                                         const TransferSpec& spec,
                                         const RunOptions& options) {
  auto& kernel = machine_.kernel();
  auto& snode = machine_.node(spec.sender);
  auto& rnode = machine_.node(spec.receiver);

  init_data(spec);

  TransferResult res;
  res.start = kernel.now();
  const sim::Tick s_ap0 = snode.ap().busy();
  const sim::Tick r_ap0 = rnode.ap().busy();
  const sim::Tick s_sp0 = snode.sp().busy();
  const sim::Tick r_sp0 = rnode.sp().busy();

  sim::OneShot notified(kernel);
  sim::OneShot consumed(kernel);

  switch (approach) {
    case 1:
      snode.ap().run(a1_sender(spec));
      rnode.ap().run(a1_receiver(spec, notified));
      break;
    case 2:
      snode.ap().run(a2_sender(spec));
      rnode.ap().run(wait_notify(spec.receiver, notified));
      break;
    case 3:
      snode.ap().run(a3_sender(spec));
      rnode.ap().run(wait_notify(spec.receiver, notified));
      break;
    case 4:
    case 5:
      sim::spawn(a45_sender(spec, /*hardware_cls=*/approach == 5));
      rnode.ap().run(wait_notify(spec.receiver, notified));
      break;
    default:
      return res;
  }

  if (!sys::run_until(kernel, [&] { return notified.fired(); },
                      res.start + options.deadline)) {
    return res;
  }
  res.notify_time = kernel.now();

  if (options.consume) {
    rnode.ap().run(consume_data(spec, options.consume_delay, consumed));
    if (!sys::run_until(kernel, [&] { return consumed.fired(); },
                        res.start + options.deadline)) {
      return res;
    }
    res.consume_time = kernel.now();
  }

  // Let in-flight tails drain: for approaches 4/5 the notification is
  // optimistic and data keeps arriving afterwards. Wait until both NIUs'
  // command machinery has stayed idle across a settle window.
  for (;;) {
    const bool idle_ok = sys::run_until(
        kernel,
        [&] {
          return snode.niu().ctrl().commands_idle() &&
                 rnode.niu().ctrl().commands_idle();
        },
        res.start + options.deadline);
    if (!idle_ok) {
      return res;
    }
    const sim::Tick settle = kernel.now() + 20 * sim::kMicrosecond;
    sys::run_until(kernel, [&] { return kernel.now() >= settle; },
                   settle + sim::kMicrosecond);
    if (snode.niu().ctrl().commands_idle() &&
        rnode.niu().ctrl().commands_idle()) {
      break;
    }
  }

  res.sender_ap_busy = snode.ap().busy() - s_ap0;
  res.receiver_ap_busy = rnode.ap().busy() - r_ap0;
  res.sender_sp_busy = snode.sp().busy() - s_sp0;
  res.receiver_sp_busy = rnode.sp().busy() - r_sp0;
  res.ok = !options.verify || verify_data(spec);
  return res;
}

}  // namespace sv::xfer

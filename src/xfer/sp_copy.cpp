#include "xfer/sp_copy.hpp"

namespace sv::xfer {

SpCopyEngine::SpCopyEngine(sim::Kernel& kernel, std::string name,
                           cpu::Processor& sp, niu::SBiu& sbiu, Costs costs)
    : FwService(kernel, std::move(name), sp, sbiu, kSpCopyReqQ,
                /*scratch=*/kStagingOffset - 64, costs) {}

void SpCopyEngine::bind_queues(sys::Node& node) {
  auto& ctrl = node.niu().ctrl();
  auto bind = [&](unsigned hwq, net::QueueId logical, std::uint32_t base) {
    auto& r = ctrl.rxq(hwq);
    r.enabled = true;
    r.bank = niu::SramBank::kSSram;
    r.base = base;
    r.slots = 64;
    r.slot_bytes = niu::kBasicSlotBytes;
    r.logical = logical;
    r.full_policy = niu::RxFullPolicy::kHold;  // lossless data path
  };
  bind(kSpCopyReqQ, kSpCopyReqL, 0xD000);
  bind(kSpCopyDataQ, kSpCopyDataL, 0xE800);
}

void SpCopyEngine::start() {
  sim::spawn(request_loop());
  sim::spawn(data_loop());
}

sim::Co<void> SpCopyEngine::request_loop() {
  for (;;) {
    co_await wait_msg();
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch);
    fw::RxMsg msg = co_await read_msg();
    const auto req = msg.as<SpCopyRequest>();

    // Read-packetize-send, one 64-byte chunk at a time, through the
    // ordered command queue (in-order execution keeps each chunk's read
    // ahead of its TagOn send and makes staging reuse safe). The sP paces
    // itself on CTRL's queue-status register so the hardware queue stays
    // shallow — it remains occupied per chunk, the profile the paper
    // reports for approach 2.
    constexpr unsigned kCmdQ = 1;
    constexpr std::size_t kWindow = 8;
    for (std::uint32_t off = 0; off < req.len; off += kSpCopyChunk) {
      const std::uint32_t n = std::min(kSpCopyChunk, req.len - off);
      co_await sp_.work(costs_.handler);

      while (co_await sbiu_.cmd_depth(kCmdQ) >= kWindow) {
        sp_.release();
        co_await sbiu_.ctrl().command_progress();
        co_await sp_.acquire();
      }

      niu::Command rd;
      rd.op = niu::CmdOp::kReadApDram;
      rd.addr = req.src + off;
      rd.len = n;
      rd.bank = niu::SramBank::kSSram;
      rd.sram_offset = kStagingOffset;
      co_await sbiu_.post(kCmdQ, std::move(rd));

      SpCopyDataHdr hdr;
      hdr.dst = req.dst + off;
      hdr.last = off + n >= req.len ? 1 : 0;
      hdr.completion_queue = req.completion_queue;
      hdr.tag = req.tag;

      niu::Command send_cmd;
      send_cmd.op = niu::CmdOp::kSendMessage;
      send_cmd.dest_node = req.dest_node;
      send_cmd.queue = kSpCopyDataL;
      send_cmd.data = fw::to_bytes(hdr);
      send_cmd.bank = niu::SramBank::kSSram;
      send_cmd.sram_offset = kStagingOffset;
      send_cmd.attach_len = n;
      co_await sbiu_.post(kCmdQ, std::move(send_cmd));
    }
    sp_.release();
  }
}

sim::Co<void> SpCopyEngine::data_loop() {
  auto& ctrl = sbiu_.ctrl();
  const unsigned q = kSpCopyDataQ;
  for (;;) {
    while (ctrl.rxq(q).empty()) {
      co_await ctrl.rx_arrival();
    }
    co_await sp_.acquire();
    co_await sp_.work(costs_.dispatch);
    auto& rq = ctrl.rxq(q);
    const std::uint32_t slot = rq.slot_addr(rq.consumer);
    std::byte buf[niu::kBasicHeaderBytes + sizeof(SpCopyDataHdr) +
                  kSpCopyChunk];
    co_await sbiu_.read_ssram(slot, buf);
    const auto desc = niu::RxDescriptor::decode(buf);
    co_await sbiu_.rx_consumer_update(
        q, static_cast<std::uint16_t>(rq.consumer + 1));

    SpCopyDataHdr hdr{};
    std::memcpy(&hdr, buf + niu::kBasicHeaderBytes, sizeof(SpCopyDataHdr));
    const std::uint32_t n =
        desc.length - static_cast<std::uint32_t>(sizeof(SpCopyDataHdr));

    co_await sp_.work(costs_.handler);
    niu::Command wr;
    wr.op = niu::CmdOp::kWriteApDram;
    wr.addr = hdr.dst;
    wr.data.assign(buf + niu::kBasicHeaderBytes + sizeof(SpCopyDataHdr),
                   buf + niu::kBasicHeaderBytes + sizeof(SpCopyDataHdr) + n);
    co_await sbiu_.immediate(std::move(wr));

    if (hdr.last != 0) {
      niu::Command note;
      note.op = niu::CmdOp::kNotifyLocal;
      note.queue = hdr.completion_queue;
      note.src_node = desc.src_node;
      note.data.resize(4);
      std::memcpy(note.data.data(), &hdr.tag, 4);
      co_await sbiu_.immediate(std::move(note));
    }
    sp_.release();
  }
}

}  // namespace sv::xfer

// The paper's section-6 experiment: five implementations of block memory
// transfer (contiguous local DRAM -> contiguous remote DRAM, followed by a
// message into the receiver's regular queue).
//
//   1  aP-managed: sender aP reads+packetizes Basic messages, receiver aP
//      copies into memory (data crosses each aP bus twice).
//   2  sP-managed: per-chunk command-queue reads + TagOn sends, receiving
//      sP lands the chunks (one bus crossing per side, high sP occupancy).
//   3  hardware block operations (kBlockXfer): both processors nearly idle.
//   4  approach 3 + optimistic S-COMA notification after 1/4 of the data;
//      the receiving sP opens clsSRAM lines as chunks arrive.
//   5  approach 4 with the aBIU extension: arriving chunks update clsSRAM
//      in hardware (set_cls remote writes), no per-chunk firmware.
//
// Approaches 4-5 require the destination to lie in the cls-gated S-COMA
// region and are meant to run with the S-COMA protocol engine disabled
// (the block transfer manages cls state itself, using the dedicated
// kClsBlockPending encoding).
#pragma once

#include "msg/dma.hpp"
#include "sys/experiment.hpp"
#include "sys/machine.hpp"
#include "xfer/sp_copy.hpp"

namespace sv::xfer {

/// cls encoding used by approaches 4/5 for not-yet-arrived lines: retry
/// without forwarding to the S-COMA protocol.
inline constexpr std::uint8_t kClsBlockPending = 4;

struct TransferSpec {
  sim::NodeId sender = 0;
  sim::NodeId receiver = 1;
  mem::Addr src = 0x0010'0000;
  mem::Addr dst = 0x0020'0000;  // approaches 4/5: must be in S-COMA region
  std::uint32_t len = 4096;     // 32-byte aligned
};

struct TransferResult {
  bool ok = false;              // completed and (if requested) verified
  sim::Tick start = 0;
  sim::Tick notify_time = 0;    // receiver saw the completion message
  sim::Tick consume_time = 0;   // receiver finished reading the data (0 if
                                // consumption was not requested)
  sim::Tick sender_ap_busy = 0;
  sim::Tick receiver_ap_busy = 0;
  sim::Tick sender_sp_busy = 0;
  sim::Tick receiver_sp_busy = 0;

  [[nodiscard]] sim::Tick latency() const { return notify_time - start; }
  [[nodiscard]] double bandwidth_mbps(std::uint32_t len) const {
    const sim::Tick t = notify_time - start;
    return t == 0 ? 0.0
                  : static_cast<double>(len) /
                        (static_cast<double>(t) * 1e-12) / 1e6;
  }
};

struct RunOptions {
  bool verify = true;
  bool consume = false;          // receiver reads the data after notify
  sim::Tick consume_delay = 0;   // wait before consuming (approach 4/5
                                 // degradation experiments read early data
                                 // late or vice versa)
  sim::Tick deadline = 500 * sim::kMillisecond;
};

/// Drives block transfers on a Machine. Construct once per machine: the
/// harness owns persistent per-node endpoints (library pointer mirrors must
/// track CTRL's free-running queue pointers across runs) and, for approach
/// 2, installs the SpCopyEngine on every node.
class BlockTransferHarness {
 public:
  explicit BlockTransferHarness(sys::Machine& machine);

  /// Run one transfer with the given approach (1..5). Synchronous: drives
  /// the machine's kernel until the transfer completes or the deadline
  /// passes.
  TransferResult run(int approach, const TransferSpec& spec,
                     const RunOptions& options = {});

  [[nodiscard]] sys::Machine& machine() { return machine_; }
  [[nodiscard]] msg::Endpoint& endpoint(sim::NodeId n) {
    return *endpoints_.at(n);
  }

 private:
  sim::Co<void> a1_sender(const TransferSpec& spec);
  sim::Co<void> a1_receiver(const TransferSpec& spec, sim::OneShot& notified);
  sim::Co<void> a2_sender(const TransferSpec& spec);
  sim::Co<void> a3_sender(const TransferSpec& spec);
  /// Approaches 4/5: sP-side orchestration on the sender.
  sim::Co<void> a45_sender(const TransferSpec& spec, bool hardware_cls);
  sim::Co<void> wait_notify(sim::NodeId node, sim::OneShot& notified);
  sim::Co<void> consume_data(const TransferSpec& spec, sim::Tick delay,
                             sim::OneShot& done);

  void init_data(const TransferSpec& spec);
  [[nodiscard]] bool verify_data(const TransferSpec& spec);

  sys::Machine& machine_;
  std::vector<std::unique_ptr<msg::Endpoint>> endpoints_;
  std::vector<std::unique_ptr<SpCopyEngine>> sp_copy_;
  std::uint32_t next_tag_ = 1;
  std::uint8_t fill_ = 1;
};

}  // namespace sv::xfer

#include "trace/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace sv::trace {

namespace {
const Json kNullJson{};
}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail("unexpected character");
    }
    ++pos_;
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json(string());
      case 't':
        if (!consume("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume("null")) fail("bad literal");
        return Json{};
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.type_ = Json::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj_.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    expect('[');
    Json v;
    v.type_ = Json::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr_.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("bad \\u escape");
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair handling; the sink never emits
          // code points outside the BMP).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double out = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || ptr != last || first == last) {
      fail("bad number");
    }
    return Json(out);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json Json::parse(std::string_view text) { return JsonParser(text).run(); }

const Json& Json::operator[](const std::string& key) const {
  if (type_ == Type::kObject) {
    if (auto it = obj_.find(key); it != obj_.end()) {
      return it->second;
    }
  }
  return kNullJson;
}

double Json::number_or(const std::string& key, double dflt) const {
  const Json& v = (*this)[key];
  return v.type() == Type::kNumber ? v.as_number() : dflt;
}

std::string Json::string_or(const std::string& key, std::string dflt) const {
  const Json& v = (*this)[key];
  return v.type() == Type::kString ? v.as_string() : dflt;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace sv::trace

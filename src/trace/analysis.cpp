#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "trace/json.hpp"

namespace sv::trace {

namespace {

std::uint64_t us_to_ps(double us) {
  return static_cast<std::uint64_t>(std::llround(us * 1e6));
}

}  // namespace

TraceAnalysis TraceAnalysis::parse(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_text(buf.str());
}

TraceAnalysis TraceAnalysis::parse_text(const std::string& text) {
  const Json doc = Json::parse(text);
  const Json& events = doc["traceEvents"];
  if (events.type() != Json::Type::kArray) {
    throw std::runtime_error("trace: no traceEvents array");
  }

  TraceAnalysis out;
  out.sim_now_ps = static_cast<std::uint64_t>(
      doc["otherData"].number_or("sim_now_ps", 0.0));
  out.dropped = static_cast<std::uint64_t>(
      doc["otherData"].number_or("dropped", 0.0));

  std::map<std::pair<int, int>, std::size_t> track_of;  // (pid, tid) -> idx
  std::map<int, std::string> process_names;
  const auto track_idx = [&](int pid, int tid) -> std::size_t {
    auto [it, fresh] = track_of.emplace(std::make_pair(pid, tid),
                                        out.tracks.size());
    if (fresh) {
      out.tracks.push_back(AnalyzedTrack{"pid" + std::to_string(pid), "", "",
                                         false, 0, 0});
    }
    return it->second;
  };

  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> intervals;
  const auto intervals_for = [&](std::size_t t)
      -> std::vector<std::pair<std::uint64_t, std::uint64_t>>& {
    if (intervals.size() <= t) {
      intervals.resize(t + 1);
    }
    return intervals[t];
  };

  for (const Json& e : events.as_array()) {
    const std::string ph = e.string_or("ph", "");
    const int pid = static_cast<int>(e.number_or("pid", 0.0));
    const int tid = static_cast<int>(e.number_or("tid", 0.0));
    if (ph == "M") {
      const std::string what = e.string_or("name", "");
      const std::string value = e["args"].string_or("name", "");
      if (what == "process_name") {
        process_names[pid] = value;
      } else if (what == "thread_name") {
        out.tracks[track_idx(pid, tid)].name = value;
      }
    } else if (ph == "X") {
      const std::size_t t = track_idx(pid, tid);
      AnalyzedSpan s;
      s.track = t;
      s.ts_ps = us_to_ps(e.number_or("ts", 0.0));
      s.dur_ps = us_to_ps(e.number_or("dur", 0.0));
      s.flow = static_cast<std::uint64_t>(e["args"].number_or("flow", 0.0));
      s.name = e.string_or("name", "");
      AnalyzedTrack& tr = out.tracks[t];
      if (tr.category.empty()) {
        tr.category = e.string_or("cat", "");
      }
      ++tr.spans;
      intervals_for(t).emplace_back(s.ts_ps, s.ts_ps + s.dur_ps);
      out.spans.push_back(std::move(s));
    } else if (ph == "C") {
      const std::size_t t = track_idx(pid, tid);
      if (!out.tracks[t].has_counter) {
        out.tracks[t].has_counter = true;
        ++out.counter_tracks;
      }
      if (out.tracks[t].name.empty()) {
        out.tracks[t].name = e.string_or("name", "");
      }
      ++out.counter_samples;
    }
    // "i", "s", "t", "f" carry no duration: nothing to accumulate.
  }

  for (const auto& [key, idx] : track_of) {
    if (auto it = process_names.find(key.first); it != process_names.end()) {
      out.tracks[idx].process = it->second;
    }
  }

  // Union-merge each track's span intervals so overlapping spans (e.g.
  // queue residency of several messages) don't double-count busy time.
  for (std::size_t t = 0; t < out.tracks.size(); ++t) {
    if (intervals.size() <= t || intervals[t].empty()) {
      continue;
    }
    auto& iv = intervals[t];
    std::sort(iv.begin(), iv.end());
    std::uint64_t busy = 0;
    std::uint64_t lo = iv[0].first;
    std::uint64_t hi = iv[0].second;
    for (std::size_t i = 1; i < iv.size(); ++i) {
      if (iv[i].first > hi) {
        busy += hi - lo;
        lo = iv[i].first;
        hi = iv[i].second;
      } else {
        hi = std::max(hi, iv[i].second);
      }
    }
    busy += hi - lo;
    out.tracks[t].busy_ps = busy;
  }
  return out;
}

std::uint64_t TraceAnalysis::span_end_ps() const {
  std::uint64_t end = 0;
  for (const AnalyzedSpan& s : spans) {
    end = std::max(end, s.ts_ps + s.dur_ps);
  }
  return end;
}

std::uint64_t TraceAnalysis::duration_ps() const {
  return sim_now_ps != 0 ? sim_now_ps : span_end_ps();
}

double TraceAnalysis::occupancy(std::size_t track) const {
  const std::uint64_t dur = duration_ps();
  if (dur == 0) {
    return 0.0;
  }
  return static_cast<double>(tracks.at(track).busy_ps) /
         static_cast<double>(dur);
}

std::vector<AnalyzedSpan> TraceAnalysis::longest(std::size_t n) const {
  std::vector<AnalyzedSpan> sorted = spans;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const AnalyzedSpan& a, const AnalyzedSpan& b) {
                     return a.dur_ps > b.dur_ps;
                   });
  if (sorted.size() > n) {
    sorted.resize(n);
  }
  return sorted;
}

std::vector<FlowSummary> TraceAnalysis::flows() const {
  std::map<std::uint64_t, FlowSummary> by_id;
  for (const AnalyzedSpan& s : spans) {
    if (s.flow == 0) {
      continue;
    }
    auto [it, fresh] = by_id.emplace(s.flow, FlowSummary{});
    FlowSummary& f = it->second;
    if (fresh) {
      f.id = s.flow;
      f.start_ps = s.ts_ps;
      f.end_ps = s.ts_ps + s.dur_ps;
    } else {
      f.start_ps = std::min(f.start_ps, s.ts_ps);
      f.end_ps = std::max(f.end_ps, s.ts_ps + s.dur_ps);
    }
    ++f.hops;
    f.by_category_ps[tracks[s.track].category] += s.dur_ps;
  }
  std::vector<FlowSummary> out;
  out.reserve(by_id.size());
  for (auto& [id, f] : by_id) {
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace sv::trace

// Timeline tracing: typed events in a bounded in-memory ring buffer.
//
// A Tracer records duration spans, instant markers and counter samples
// against named tracks. A track is one swim-lane in the exported timeline
// and maps onto a (process, thread) pair in the Chrome trace-event format:
// the process is the node ("n0", "n1", "net") and the thread is the
// hardware unit within it ("bus", "aP", "NIU.TxU", ...). Spans may carry a
// flow id linking a message's send, route and deliver hops into one arrow
// chain across lanes.
//
// Cost model: when no Tracer is attached to the Kernel the instrumentation
// sites are a single pointer null-check — no string formatting, no
// allocation. When the ring is full the oldest events are overwritten, so
// a trace always holds the newest window of activity.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace sv::trace {

using TrackId = std::uint16_t;
inline constexpr TrackId kNoTrack = 0xFFFF;

enum class EventKind : std::uint8_t {
  kSpan,     // [ts, ts+dur) duration on a track
  kInstant,  // point marker
  kCounter,  // sampled value of a counter track
};

struct TrackInfo {
  std::string process;   // swim-lane group, e.g. "n0"
  std::string name;      // lane label within the group, e.g. "NIU.TxU"
  std::string category;  // "bus" | "cpu" | "niu" | "queue" | "link" | ...
  bool counter = false;
};

struct Event {
  EventKind kind = EventKind::kInstant;
  TrackId track = kNoTrack;
  sim::Tick ts = 0;
  sim::Tick dur = 0;        // spans only
  double value = 0.0;       // counters only
  std::uint64_t flow = 0;   // 0 = not part of a flow
  std::string name;
};

class Tracer;

/// Receives every event a Tracer records, at record time. A sink makes
/// long traces bounded-memory: events stream out (to disk, typically) as
/// they happen instead of accumulating in the ring, so the ring can stay
/// small without losing history to overwrites. The tracer reference gives
/// the sink access to the track table for the event's lane names.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Tracer& tracer, const Event& e) = 0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Register (or look up) the track for (process, name). Instrumentation
  /// sites call this once and cache the returned id.
  TrackId track(std::string_view process, std::string_view name,
                std::string_view category, bool counter = false);

  /// Derive the track from a dotted SimObject name: "n0.NIU.TxU" becomes
  /// process "n0", lane "NIU.TxU".
  TrackId track_for(std::string_view object_name, std::string_view category,
                    bool counter = false);

  /// Fresh nonzero flow id for linking spans across tracks.
  std::uint64_t next_flow() { return ++flow_seq_; }

  void span(TrackId t, std::string name, sim::Tick start, sim::Tick end,
            std::uint64_t flow = 0);
  void instant(TrackId t, std::string name, sim::Tick ts,
               std::uint64_t flow = 0);
  void counter(TrackId t, sim::Tick ts, double value);

  [[nodiscard]] const std::vector<TrackInfo>& tracks() const {
    return tracks_;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ - ring_.size();
  }

  /// Visit events oldest to newest.
  template <typename F>
  void for_each(F&& fn) const {
    const std::size_t n = ring_.size();
    for (std::size_t i = 0; i < n; ++i) {
      fn(ring_[(head_ + i) % n]);
    }
  }

  void clear();

  /// Attach (or detach, with nullptr) a streaming sink. The sink sees
  /// every subsequent event in record order, before it enters the ring;
  /// it must outlive the attachment.
  void set_sink(TraceSink* sink) { sink_ = sink; }
  [[nodiscard]] TraceSink* sink() const { return sink_; }

 private:
  void push(Event e);

  TraceSink* sink_ = nullptr;
  bool enabled_ = true;
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // oldest event once the ring has wrapped
  std::uint64_t recorded_ = 0;
  std::uint64_t flow_seq_ = 0;
  std::vector<TrackInfo> tracks_;
  std::map<std::string, TrackId, std::less<>> by_key_;
};

/// Several per-domain Tracers recombined into one canonical timeline.
/// Canonical means independent of how the machine was partitioned: tracks
/// are sorted by (process, name), events by (ts, track) with each track's
/// own emission order preserved. Two runs that record the same per-track
/// event sequences merge to byte-identical MergedTraces, however many
/// tracers the events were spread across.
struct MergedTrace {
  std::vector<TrackInfo> tracks;
  std::vector<Event> events;  // Event::track reindexed into `tracks`
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
};

MergedTrace merge_traces(const std::vector<const Tracer*>& tracers);

/// Plain-text rendering of the merged timeline, one line per event — the
/// artifact the parallel-equivalence tests compare across thread counts.
std::string canonical_span_dump(const std::vector<const Tracer*>& tracers);

}  // namespace sv::trace

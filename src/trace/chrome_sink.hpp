// Serializes a Tracer's ring buffer into Chrome trace-event JSON, the
// format Perfetto and chrome://tracing load directly.
//
// Mapping: each track process ("n0", "n1", "net") becomes a pid and each
// lane within it a tid, so the viewer groups hardware units under their
// node. Spans become "X" complete events, instants "i", counter tracks "C",
// and flows "s"/"t"/"f" arrow chains bound to the spans that share a flow
// id. Timestamps are microseconds (ticks are picoseconds, so 1 tick =
// 1e-6 us and full precision survives).
#pragma once

#include <ostream>

#include "sim/types.hpp"
#include "trace/trace.hpp"

namespace sv::trace {

struct ChromeWriteOptions {
  /// Simulation end time, recorded in otherData.sim_now_ps so analyzers
  /// use the same occupancy denominator as the StatRegistry dump.
  sim::Tick sim_now = 0;
};

void write_chrome_trace(const Tracer& tracer, std::ostream& os,
                        const ChromeWriteOptions& options = {});

/// Multi-domain variant: merges per-domain tracers (trace::merge_traces)
/// into one canonical timeline before writing, so a partitioned run
/// exports the identical file a sequential run would.
void write_chrome_trace(const std::vector<const Tracer*>& tracers,
                        std::ostream& os,
                        const ChromeWriteOptions& options = {});

/// Convenience: write to a file; throws std::runtime_error on I/O failure.
void write_chrome_trace_file(const Tracer& tracer, const std::string& path,
                             const ChromeWriteOptions& options = {});
void write_chrome_trace_file(const std::vector<const Tracer*>& tracers,
                             const std::string& path,
                             const ChromeWriteOptions& options = {});

}  // namespace sv::trace

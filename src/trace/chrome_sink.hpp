// Serializes a Tracer's ring buffer into Chrome trace-event JSON, the
// format Perfetto and chrome://tracing load directly.
//
// Mapping: each track process ("n0", "n1", "net") becomes a pid and each
// lane within it a tid, so the viewer groups hardware units under their
// node. Spans become "X" complete events, instants "i", counter tracks "C",
// and flows "s"/"t"/"f" arrow chains bound to the spans that share a flow
// id. Timestamps are microseconds (ticks are picoseconds, so 1 tick =
// 1e-6 us and full precision survives).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "trace/trace.hpp"

namespace sv::trace {

struct ChromeWriteOptions {
  /// Simulation end time, recorded in otherData.sim_now_ps so analyzers
  /// use the same occupancy denominator as the StatRegistry dump.
  sim::Tick sim_now = 0;
};

/// Streaming Chrome JSON emitter: a TraceSink that writes each event the
/// moment it is recorded, so a trace of any length costs bounded memory —
/// the ring only needs to cover whatever other consumers (golden dumps)
/// still want, and nothing is lost to overwrites in the streamed file.
///
/// Differences from the batch writer, both invisible to viewers: process
/// and lane metadata is emitted when a lane first carries an event (the
/// batch writer names every registered lane up front), and otherData
/// moves to the end of the file, after the counts it reports are known.
/// Flow arrows still need every hop of a flow before the s/t/f phases can
/// be assigned, so pending flows are the one retained state; the table is
/// bounded — past `max_pending_flows`, the oldest flow's chain is flushed
/// as-is and further hops for it start a new chain.
struct ChromeStreamOptions {
  std::size_t max_pending_flows = std::size_t{1} << 16;
};

class ChromeStreamSink : public TraceSink {
 public:
  using Options = ChromeStreamOptions;

  /// `os` must outlive the sink. The JSON header is written immediately.
  explicit ChromeStreamSink(std::ostream& os, Options options = {});

  void on_event(const Tracer& tracer, const Event& e) override;

  /// Flush pending flow arrows and close the JSON document. Call exactly
  /// once, after the last event; further on_event calls are an error.
  void finish(sim::Tick sim_now);

  [[nodiscard]] std::uint64_t events_written() const {
    return events_written_;
  }
  /// Flows flushed early because the pending table hit its bound.
  [[nodiscard]] std::uint64_t flows_evicted() const { return flows_evicted_; }

 private:
  struct TrackAddr {
    int pid = 0;
    int tid = 0;
  };
  struct FlowHop {
    sim::Tick ts;
    int pid;
    int tid;
  };

  /// Lazily assign (pid, tid) and emit naming metadata for a track.
  const TrackAddr& ensure_track(const Tracer& tracer, TrackId id);
  std::ostream& sep();
  void flush_flow(std::uint64_t id, const std::vector<FlowHop>& hops);

  std::ostream& os_;
  Options options_;
  bool first_ = true;
  bool finished_ = false;
  std::map<std::string, int> pids_;
  std::map<int, int> next_tid_;
  std::vector<TrackAddr> addr_;  // indexed by TrackId; pid 0 = unseen
  std::map<std::uint64_t, std::vector<FlowHop>> flows_;
  std::uint64_t events_written_ = 0;
  std::uint64_t flows_evicted_ = 0;
};

void write_chrome_trace(const Tracer& tracer, std::ostream& os,
                        const ChromeWriteOptions& options = {});

/// Multi-domain variant: merges per-domain tracers (trace::merge_traces)
/// into one canonical timeline before writing, so a partitioned run
/// exports the identical file a sequential run would.
void write_chrome_trace(const std::vector<const Tracer*>& tracers,
                        std::ostream& os,
                        const ChromeWriteOptions& options = {});

/// Convenience: write to a file; throws std::runtime_error on I/O failure.
void write_chrome_trace_file(const Tracer& tracer, const std::string& path,
                             const ChromeWriteOptions& options = {});
void write_chrome_trace_file(const std::vector<const Tracer*>& tracers,
                             const std::string& path,
                             const ChromeWriteOptions& options = {});

}  // namespace sv::trace

// A minimal JSON value + recursive-descent parser, just enough to read
// back the Chrome trace files the sink writes (and the StatRegistry JSON
// dump). No external dependencies; throws std::runtime_error on malformed
// input.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sv::trace {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Json(double n) : type_(Type::kNumber), num_(n) {}
  explicit Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const { return arr_; }
  [[nodiscard]] const Object& as_object() const { return obj_; }

  /// Object member lookup; returns a shared null value when absent.
  [[nodiscard]] const Json& operator[](const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const {
    return type_ == Type::kObject && obj_.count(key) != 0;
  }

  /// Convenience accessors with defaults for optional members.
  [[nodiscard]] double number_or(const std::string& key, double dflt) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string dflt) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Escape a string for embedding in a JSON document (no surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace sv::trace

// Reads a Chrome trace-event JSON file back and computes the summaries
// svtrace prints: per-unit occupancy, the longest spans, and per-message
// (flow) end-to-end latency broken down by track category.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

namespace sv::trace {

struct AnalyzedSpan {
  std::size_t track = 0;     // index into TraceAnalysis::tracks
  std::uint64_t ts_ps = 0;   // start
  std::uint64_t dur_ps = 0;
  std::uint64_t flow = 0;    // 0 = none
  std::string name;
};

struct AnalyzedTrack {
  std::string process;  // "n0"
  std::string name;     // "bus"
  std::string category;
  bool has_counter = false;
  std::uint64_t busy_ps = 0;  // union of span intervals (overlap merged)
  std::uint64_t spans = 0;
  [[nodiscard]] std::string full_name() const { return process + "." + name; }
};

struct FlowSummary {
  std::uint64_t id = 0;
  std::uint64_t start_ps = 0;
  std::uint64_t end_ps = 0;
  std::uint64_t hops = 0;
  /// Span time attributed to each track category ("niu", "link", ...).
  std::map<std::string, std::uint64_t> by_category_ps;
  [[nodiscard]] std::uint64_t latency_ps() const { return end_ps - start_ps; }
};

class TraceAnalysis {
 public:
  /// Parse a Chrome trace document. Throws std::runtime_error on malformed
  /// JSON or a document without a traceEvents array.
  static TraceAnalysis parse(std::istream& is);
  static TraceAnalysis parse_text(const std::string& text);

  std::vector<AnalyzedTrack> tracks;
  std::vector<AnalyzedSpan> spans;
  std::uint64_t counter_samples = 0;
  std::uint64_t counter_tracks = 0;
  std::uint64_t sim_now_ps = 0;  // from otherData; 0 when absent
  std::uint64_t dropped = 0;

  /// End of the latest span/counter event (fallback occupancy denominator).
  [[nodiscard]] std::uint64_t span_end_ps() const;
  /// sim_now_ps when present, else span_end_ps().
  [[nodiscard]] std::uint64_t duration_ps() const;

  /// Occupancy fraction for one track (busy / duration).
  [[nodiscard]] double occupancy(std::size_t track) const;

  /// The n longest spans, longest first.
  [[nodiscard]] std::vector<AnalyzedSpan> longest(std::size_t n) const;

  /// Per-flow summaries, in flow-id order.
  [[nodiscard]] std::vector<FlowSummary> flows() const;
};

}  // namespace sv::trace

#include "trace/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <tuple>

namespace sv::trace {

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TrackId Tracer::track(std::string_view process, std::string_view name,
                      std::string_view category, bool counter) {
  std::string key;
  key.reserve(process.size() + 1 + name.size());
  key.append(process);
  key.push_back('\0');  // separator that cannot appear in either part
  key.append(name);
  if (auto it = by_key_.find(key); it != by_key_.end()) {
    return it->second;
  }
  const auto id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(TrackInfo{std::string(process), std::string(name),
                              std::string(category), counter});
  by_key_.emplace(std::move(key), id);
  return id;
}

TrackId Tracer::track_for(std::string_view object_name,
                          std::string_view category, bool counter) {
  const auto dot = object_name.find('.');
  if (dot == std::string_view::npos) {
    return track(object_name, object_name, category, counter);
  }
  return track(object_name.substr(0, dot), object_name.substr(dot + 1),
               category, counter);
}

void Tracer::span(TrackId t, std::string name, sim::Tick start, sim::Tick end,
                  std::uint64_t flow) {
  if (!enabled_ || t == kNoTrack || end < start) {
    return;
  }
  push(Event{EventKind::kSpan, t, start, end - start, 0.0, flow,
             std::move(name)});
}

void Tracer::instant(TrackId t, std::string name, sim::Tick ts,
                     std::uint64_t flow) {
  if (!enabled_ || t == kNoTrack) {
    return;
  }
  push(Event{EventKind::kInstant, t, ts, 0, 0.0, flow, std::move(name)});
}

void Tracer::counter(TrackId t, sim::Tick ts, double value) {
  if (!enabled_ || t == kNoTrack) {
    return;
  }
  push(Event{EventKind::kCounter, t, ts, 0, value, 0, {}});
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

void Tracer::push(Event e) {
  ++recorded_;
  if (sink_ != nullptr) {
    sink_->on_event(*this, e);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

MergedTrace merge_traces(const std::vector<const Tracer*>& tracers) {
  MergedTrace out;

  // Canonical track table: every (process, name) across all tracers,
  // sorted. The sort key is what partitioning cannot change; registration
  // order (which tracer saw a track first) is what it can.
  struct Key {
    std::string_view process;
    std::string_view name;
    bool operator<(const Key& o) const {
      return std::tie(process, name) < std::tie(o.process, o.name);
    }
  };
  std::vector<std::pair<Key, const TrackInfo*>> keyed;
  for (const Tracer* tr : tracers) {
    for (const TrackInfo& t : tr->tracks()) {
      keyed.push_back({Key{t.process, t.name}, &t});
    }
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  keyed.erase(std::unique(keyed.begin(), keyed.end(),
                          [](const auto& a, const auto& b) {
                            return !(a.first < b.first) &&
                                   !(b.first < a.first);
                          }),
              keyed.end());
  out.tracks.reserve(keyed.size());
  for (const auto& [key, info] : keyed) {
    out.tracks.push_back(*info);
  }

  auto canonical_id = [&](const TrackInfo& t) {
    const Key k{t.process, t.name};
    const auto it = std::lower_bound(
        keyed.begin(), keyed.end(), k,
        [](const auto& a, const Key& b) { return a.first < b; });
    return static_cast<TrackId>(it - keyed.begin());
  };

  // Gather events with remapped track ids. Concatenation order across
  // tracers does not matter for the final order because every track is
  // recorded by exactly one domain: the stable sort below orders events by
  // (ts, track) and keeps each single track's emission order intact.
  for (const Tracer* tr : tracers) {
    out.recorded += tr->recorded();
    out.dropped += tr->dropped();
    std::vector<TrackId> remap(tr->tracks().size());
    for (std::size_t i = 0; i < tr->tracks().size(); ++i) {
      remap[i] = canonical_id(tr->tracks()[i]);
    }
    tr->for_each([&](const Event& e) {
      Event copy = e;
      copy.track = remap[e.track];
      out.events.push_back(std::move(copy));
    });
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const Event& a, const Event& b) {
                     return std::tie(a.ts, a.track) <
                            std::tie(b.ts, b.track);
                   });
  return out;
}

std::string canonical_span_dump(const std::vector<const Tracer*>& tracers) {
  const MergedTrace merged = merge_traces(tracers);
  std::string out;
  out.reserve(merged.events.size() * 64);
  char buf[64];
  for (const Event& e : merged.events) {
    const TrackInfo& t = merged.tracks[e.track];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " ", e.ts);
    out += buf;
    out += t.process;
    out += '/';
    out += t.name;
    switch (e.kind) {
      case EventKind::kSpan:
        std::snprintf(buf, sizeof(buf),
                      " span dur=%" PRIu64 " flow=%" PRIu64 " ", e.dur,
                      e.flow);
        break;
      case EventKind::kInstant:
        std::snprintf(buf, sizeof(buf), " instant flow=%" PRIu64 " ",
                      e.flow);
        break;
      case EventKind::kCounter:
        std::snprintf(buf, sizeof(buf), " counter value=%.17g ", e.value);
        break;
    }
    out += buf;
    out += e.name;
    out += '\n';
  }
  return out;
}

}  // namespace sv::trace

#include "trace/trace.hpp"

namespace sv::trace {

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TrackId Tracer::track(std::string_view process, std::string_view name,
                      std::string_view category, bool counter) {
  std::string key;
  key.reserve(process.size() + 1 + name.size());
  key.append(process);
  key.push_back('\0');  // separator that cannot appear in either part
  key.append(name);
  if (auto it = by_key_.find(key); it != by_key_.end()) {
    return it->second;
  }
  const auto id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(TrackInfo{std::string(process), std::string(name),
                              std::string(category), counter});
  by_key_.emplace(std::move(key), id);
  return id;
}

TrackId Tracer::track_for(std::string_view object_name,
                          std::string_view category, bool counter) {
  const auto dot = object_name.find('.');
  if (dot == std::string_view::npos) {
    return track(object_name, object_name, category, counter);
  }
  return track(object_name.substr(0, dot), object_name.substr(dot + 1),
               category, counter);
}

void Tracer::span(TrackId t, std::string name, sim::Tick start, sim::Tick end,
                  std::uint64_t flow) {
  if (!enabled_ || t == kNoTrack || end < start) {
    return;
  }
  push(Event{EventKind::kSpan, t, start, end - start, 0.0, flow,
             std::move(name)});
}

void Tracer::instant(TrackId t, std::string name, sim::Tick ts,
                     std::uint64_t flow) {
  if (!enabled_ || t == kNoTrack) {
    return;
  }
  push(Event{EventKind::kInstant, t, ts, 0, 0.0, flow, std::move(name)});
}

void Tracer::counter(TrackId t, sim::Tick ts, double value) {
  if (!enabled_ || t == kNoTrack) {
    return;
  }
  push(Event{EventKind::kCounter, t, ts, 0, value, 0, {}});
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

void Tracer::push(Event e) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

}  // namespace sv::trace

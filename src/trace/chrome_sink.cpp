#include "trace/chrome_sink.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

#include "trace/json.hpp"

namespace sv::trace {

namespace {

/// Picoseconds -> microseconds with full precision (1 ps = 1e-6 us).
std::string us(sim::Tick t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                static_cast<std::uint64_t>(t) / 1000000,
                static_cast<std::uint64_t>(t) % 1000000);
  return buf;
}

std::string fmt_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct TrackAddr {
  int pid = 0;
  int tid = 0;
};

/// Emission core shared by the single- and multi-tracer entry points:
/// `tracks` names the lanes, `for_each_event` visits events in output
/// order with tracks already indexed into `tracks`.
template <typename ForEach>
void emit_chrome_trace(const std::vector<TrackInfo>& tracks,
                       ForEach&& for_each_event, std::uint64_t recorded,
                       std::uint64_t dropped, std::ostream& os,
                       const ChromeWriteOptions& options) {
  // Assign pids per process (in registration order) and tids per lane.
  std::map<std::string, int> pids;
  std::vector<TrackAddr> addr(tracks.size());
  std::map<int, int> next_tid;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const TrackInfo& t = tracks[i];
    auto [it, fresh] = pids.emplace(t.process, static_cast<int>(pids.size()) + 1);
    (void)fresh;
    addr[i].pid = it->second;
    addr[i].tid = ++next_tid[it->second];
  }

  os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
     << "\"sim_now_ps\":" << options.sim_now
     << ",\"recorded\":" << recorded
     << ",\"dropped\":" << dropped << "},\"traceEvents\":[\n";

  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    if (!first) {
      os << ",\n";
    }
    first = false;
    return os;
  };

  // Metadata: name every process and lane, even lanes with no events (the
  // full machine layout stays visible in the viewer).
  for (const auto& [process, pid] : pids) {
    sep() << "{\"ph\":\"M\",\"pid\":" << pid
          << ",\"name\":\"process_name\",\"args\":{\"name\":\""
          << json_escape(process) << "\"}}";
  }
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const TrackInfo& t = tracks[i];
    sep() << "{\"ph\":\"M\",\"pid\":" << addr[i].pid
          << ",\"tid\":" << addr[i].tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
          << json_escape(t.name) << "\"}}";
  }

  // A flow arrow chain needs every span that carries the flow id, sorted
  // by start time: first hop emits "s", later hops "t", final hop "f".
  struct FlowHop {
    sim::Tick ts;
    int pid;
    int tid;
  };
  std::map<std::uint64_t, std::vector<FlowHop>> flows;

  for_each_event([&](const Event& e) {
    const TrackAddr& a = addr[e.track];
    const TrackInfo& t = tracks[e.track];
    switch (e.kind) {
      case EventKind::kSpan:
        sep() << "{\"ph\":\"X\",\"name\":\"" << json_escape(e.name)
              << "\",\"cat\":\"" << json_escape(t.category)
              << "\",\"pid\":" << a.pid << ",\"tid\":" << a.tid
              << ",\"ts\":" << us(e.ts) << ",\"dur\":" << us(e.dur);
        if (e.flow != 0) {
          os << ",\"args\":{\"flow\":" << e.flow << "}";
        }
        os << "}";
        if (e.flow != 0) {
          flows[e.flow].push_back(FlowHop{e.ts, a.pid, a.tid});
        }
        break;
      case EventKind::kInstant:
        sep() << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << json_escape(e.name)
              << "\",\"cat\":\"" << json_escape(t.category)
              << "\",\"pid\":" << a.pid << ",\"tid\":" << a.tid
              << ",\"ts\":" << us(e.ts) << "}";
        break;
      case EventKind::kCounter:
        sep() << "{\"ph\":\"C\",\"name\":\"" << json_escape(t.name)
              << "\",\"pid\":" << a.pid << ",\"tid\":" << a.tid
              << ",\"ts\":" << us(e.ts) << ",\"args\":{\"value\":"
              << fmt_value(e.value) << "}}";
        break;
    }
  });

  for (auto& [id, hops] : flows) {
    if (hops.size() < 2) {
      continue;
    }
    std::stable_sort(hops.begin(), hops.end(),
                     [](const FlowHop& a, const FlowHop& b) {
                       return a.ts < b.ts;
                     });
    for (std::size_t i = 0; i < hops.size(); ++i) {
      const char* ph = i == 0 ? "s" : (i + 1 == hops.size() ? "f" : "t");
      sep() << "{\"ph\":\"" << ph << "\",\"cat\":\"flow\",\"name\":\"msg\""
            << ",\"id\":" << id << ",\"pid\":" << hops[i].pid
            << ",\"tid\":" << hops[i].tid << ",\"ts\":" << us(hops[i].ts);
      if (*ph == 'f') {
        os << ",\"bp\":\"e\"";
      }
      os << "}";
    }
  }

  os << "\n]}\n";
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, std::ostream& os,
                        const ChromeWriteOptions& options) {
  emit_chrome_trace(
      tracer.tracks(),
      [&](auto&& fn) { tracer.for_each(fn); },
      tracer.recorded(), tracer.dropped(), os, options);
}

void write_chrome_trace(const std::vector<const Tracer*>& tracers,
                        std::ostream& os, const ChromeWriteOptions& options) {
  const MergedTrace merged = merge_traces(tracers);
  emit_chrome_trace(
      merged.tracks,
      [&](auto&& fn) {
        for (const Event& e : merged.events) {
          fn(e);
        }
      },
      merged.recorded, merged.dropped, os, options);
}

void write_chrome_trace_file(const Tracer& tracer, const std::string& path,
                             const ChromeWriteOptions& options) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("trace: cannot open " + path);
  }
  write_chrome_trace(tracer, os, options);
  if (!os) {
    throw std::runtime_error("trace: write failed for " + path);
  }
}

void write_chrome_trace_file(const std::vector<const Tracer*>& tracers,
                             const std::string& path,
                             const ChromeWriteOptions& options) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("trace: cannot open " + path);
  }
  write_chrome_trace(tracers, os, options);
  if (!os) {
    throw std::runtime_error("trace: write failed for " + path);
  }
}

}  // namespace sv::trace

#include "trace/chrome_sink.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

#include "trace/json.hpp"

namespace sv::trace {

namespace {

/// Picoseconds -> microseconds with full precision (1 ps = 1e-6 us).
std::string us(sim::Tick t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                static_cast<std::uint64_t>(t) / 1000000,
                static_cast<std::uint64_t>(t) % 1000000);
  return buf;
}

std::string fmt_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct TrackAddr {
  int pid = 0;
  int tid = 0;
};

/// One event record, exactly as the batch writer has always formatted it.
/// Shared with the streaming sink so both emit byte-identical records.
void emit_record(std::ostream& os, const TrackInfo& t, int pid, int tid,
                 const Event& e) {
  switch (e.kind) {
    case EventKind::kSpan:
      os << "{\"ph\":\"X\",\"name\":\"" << json_escape(e.name)
         << "\",\"cat\":\"" << json_escape(t.category) << "\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"ts\":" << us(e.ts)
         << ",\"dur\":" << us(e.dur);
      if (e.flow != 0) {
        os << ",\"args\":{\"flow\":" << e.flow << "}";
      }
      os << "}";
      break;
    case EventKind::kInstant:
      os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << json_escape(e.name)
         << "\",\"cat\":\"" << json_escape(t.category) << "\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"ts\":" << us(e.ts) << "}";
      break;
    case EventKind::kCounter:
      os << "{\"ph\":\"C\",\"name\":\"" << json_escape(t.name)
         << "\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"ts\":" << us(e.ts) << ",\"args\":{\"value\":"
         << fmt_value(e.value) << "}}";
      break;
  }
}

/// Emit one flow's s/t/f arrow chain (hops sorted by start time). Shared
/// by batch and streaming emitters; Hop is any (ts, pid, tid) struct.
template <typename Hop, typename Sep>
void emit_flow_chain(Sep&& sep, std::ostream& os, std::uint64_t id,
                     std::vector<Hop>& hops) {
  if (hops.size() < 2) {
    return;
  }
  std::stable_sort(hops.begin(), hops.end(), [](const Hop& a, const Hop& b) {
    return a.ts < b.ts;
  });
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const char* ph = i == 0 ? "s" : (i + 1 == hops.size() ? "f" : "t");
    sep() << "{\"ph\":\"" << ph << "\",\"cat\":\"flow\",\"name\":\"msg\""
          << ",\"id\":" << id << ",\"pid\":" << hops[i].pid
          << ",\"tid\":" << hops[i].tid << ",\"ts\":" << us(hops[i].ts);
    if (*ph == 'f') {
      os << ",\"bp\":\"e\"";
    }
    os << "}";
  }
}

/// Emission core shared by the single- and multi-tracer entry points:
/// `tracks` names the lanes, `for_each_event` visits events in output
/// order with tracks already indexed into `tracks`.
template <typename ForEach>
void emit_chrome_trace(const std::vector<TrackInfo>& tracks,
                       ForEach&& for_each_event, std::uint64_t recorded,
                       std::uint64_t dropped, std::ostream& os,
                       const ChromeWriteOptions& options) {
  // Assign pids per process (in registration order) and tids per lane.
  std::map<std::string, int> pids;
  std::vector<TrackAddr> addr(tracks.size());
  std::map<int, int> next_tid;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const TrackInfo& t = tracks[i];
    auto [it, fresh] = pids.emplace(t.process, static_cast<int>(pids.size()) + 1);
    (void)fresh;
    addr[i].pid = it->second;
    addr[i].tid = ++next_tid[it->second];
  }

  os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
     << "\"sim_now_ps\":" << options.sim_now
     << ",\"recorded\":" << recorded
     << ",\"dropped\":" << dropped << "},\"traceEvents\":[\n";

  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    if (!first) {
      os << ",\n";
    }
    first = false;
    return os;
  };

  // Metadata: name every process and lane, even lanes with no events (the
  // full machine layout stays visible in the viewer).
  for (const auto& [process, pid] : pids) {
    sep() << "{\"ph\":\"M\",\"pid\":" << pid
          << ",\"name\":\"process_name\",\"args\":{\"name\":\""
          << json_escape(process) << "\"}}";
  }
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const TrackInfo& t = tracks[i];
    sep() << "{\"ph\":\"M\",\"pid\":" << addr[i].pid
          << ",\"tid\":" << addr[i].tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
          << json_escape(t.name) << "\"}}";
  }

  // A flow arrow chain needs every span that carries the flow id, sorted
  // by start time: first hop emits "s", later hops "t", final hop "f".
  struct FlowHop {
    sim::Tick ts;
    int pid;
    int tid;
  };
  std::map<std::uint64_t, std::vector<FlowHop>> flows;

  for_each_event([&](const Event& e) {
    const TrackAddr& a = addr[e.track];
    emit_record(sep(), tracks[e.track], a.pid, a.tid, e);
    if (e.kind == EventKind::kSpan && e.flow != 0) {
      flows[e.flow].push_back(FlowHop{e.ts, a.pid, a.tid});
    }
  });

  for (auto& [id, hops] : flows) {
    emit_flow_chain(sep, os, id, hops);
  }

  os << "\n]}\n";
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, std::ostream& os,
                        const ChromeWriteOptions& options) {
  emit_chrome_trace(
      tracer.tracks(),
      [&](auto&& fn) { tracer.for_each(fn); },
      tracer.recorded(), tracer.dropped(), os, options);
}

void write_chrome_trace(const std::vector<const Tracer*>& tracers,
                        std::ostream& os, const ChromeWriteOptions& options) {
  const MergedTrace merged = merge_traces(tracers);
  emit_chrome_trace(
      merged.tracks,
      [&](auto&& fn) {
        for (const Event& e : merged.events) {
          fn(e);
        }
      },
      merged.recorded, merged.dropped, os, options);
}

ChromeStreamSink::ChromeStreamSink(std::ostream& os, Options options)
    : os_(os), options_(options) {
  // otherData comes at the end for a stream: its counts are only known
  // once the last event has been written.
  os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
}

std::ostream& ChromeStreamSink::sep() {
  if (!first_) {
    os_ << ",\n";
  }
  first_ = false;
  return os_;
}

const ChromeStreamSink::TrackAddr& ChromeStreamSink::ensure_track(
    const Tracer& tracer, TrackId id) {
  if (id >= addr_.size()) {
    addr_.resize(tracer.tracks().size());
  }
  TrackAddr& a = addr_[id];
  if (a.pid == 0) {
    const TrackInfo& t = tracer.tracks()[id];
    auto [it, fresh] =
        pids_.emplace(t.process, static_cast<int>(pids_.size()) + 1);
    if (fresh) {
      sep() << "{\"ph\":\"M\",\"pid\":" << it->second
            << ",\"name\":\"process_name\",\"args\":{\"name\":\""
            << json_escape(t.process) << "\"}}";
    }
    a.pid = it->second;
    a.tid = ++next_tid_[a.pid];
    sep() << "{\"ph\":\"M\",\"pid\":" << a.pid << ",\"tid\":" << a.tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
          << json_escape(t.name) << "\"}}";
  }
  return a;
}

void ChromeStreamSink::on_event(const Tracer& tracer, const Event& e) {
  const TrackAddr& a = ensure_track(tracer, e.track);
  emit_record(sep(), tracer.tracks()[e.track], a.pid, a.tid, e);
  ++events_written_;
  if (e.kind == EventKind::kSpan && e.flow != 0) {
    flows_[e.flow].push_back(FlowHop{e.ts, a.pid, a.tid});
    if (flows_.size() > options_.max_pending_flows) {
      // Oldest flow (lowest id: next_flow() is monotone) flushes as-is.
      auto oldest = flows_.begin();
      flush_flow(oldest->first, oldest->second);
      flows_.erase(oldest);
      ++flows_evicted_;
    }
  }
}

void ChromeStreamSink::flush_flow(std::uint64_t id,
                                  const std::vector<FlowHop>& hops) {
  std::vector<FlowHop> copy = hops;
  emit_flow_chain([this]() -> std::ostream& { return sep(); }, os_, id, copy);
}

void ChromeStreamSink::finish(sim::Tick sim_now) {
  if (finished_) {
    return;
  }
  finished_ = true;
  for (const auto& [id, hops] : flows_) {
    flush_flow(id, hops);
  }
  flows_.clear();
  os_ << "\n],\"otherData\":{\"sim_now_ps\":" << sim_now
      << ",\"recorded\":" << events_written_
      << ",\"dropped\":0}}\n";
  os_.flush();
}

void write_chrome_trace_file(const Tracer& tracer, const std::string& path,
                             const ChromeWriteOptions& options) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("trace: cannot open " + path);
  }
  write_chrome_trace(tracer, os, options);
  if (!os) {
    throw std::runtime_error("trace: write failed for " + path);
  }
}

void write_chrome_trace_file(const std::vector<const Tracer*>& tracers,
                             const std::string& path,
                             const ChromeWriteOptions& options) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("trace: cannot open " + path);
  }
  write_chrome_trace(tracers, os, options);
  if (!os) {
    throw std::runtime_error("trace: write failed for " + path);
  }
}

}  // namespace sv::trace

#include "app/apps.hpp"

#include <cmath>
#include <cstring>
#include <map>

#include "sim/random.hpp"

namespace sv::app {

namespace {

// User-tag plan (all < kMaxUserTag). The stencil encodes (iteration,
// direction); KV uses fixed request/reply tags with the opcode in the
// payload, so a server's wildcard-source receive can never swallow a
// collective frame.
constexpr std::uint32_t kKvReqTag = 1;
constexpr std::uint32_t kKvRepTag = 2;

std::uint32_t stencil_tag(std::size_t iter, unsigned dir) {
  return static_cast<std::uint32_t>((iter << 1) | dir);
}

/// Deterministic small-range hash for payload checksums (kept < 2^20 so
/// double accumulation over millions of replies stays exact).
double fold(std::span<const std::byte> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::byte b : bytes) {
    h = (h ^ static_cast<std::uint64_t>(b)) * 1099511628211ull;
  }
  return static_cast<double>(h & 0xFFFFFu);
}

/// Reduce per-rank aggregates to rank 0 and publish into `out`. Every
/// rank must call it; `out` is written only by rank 0 (i.e. only by node
/// 0's domain).
sim::Co<void> publish(Comm& c, double checksum, std::uint64_t ops,
                      std::uint64_t errors, AppResult* out) {
  std::vector<double> acc = {checksum, static_cast<double>(ops),
                             static_cast<double>(errors)};
  co_await c.allreduce(acc, ReduceOp::kSum);
  if (c.rank() == 0 && out != nullptr) {
    out->checksum = acc[0];
    out->ops = static_cast<std::uint64_t>(acc[1]);
    out->errors = static_cast<std::uint64_t>(acc[2]);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Stencil.
// ---------------------------------------------------------------------------

namespace {

sim::Co<void> stencil_program(Comm& c, StencilParams p, AppResult* out) {
  const std::size_t n = c.size();
  const std::size_t r = c.rank();
  const auto row_begin = [&](std::size_t q) { return q * p.ny / n; };
  const auto row_count = [&](std::size_t q) {
    return row_begin(q + 1) - row_begin(q);
  };
  const std::size_t rows = row_count(r);
  const std::size_t nx = p.nx;

  // Nearest ranks above/below that own at least one row (ny < nranks
  // leaves some ranks with none).
  int prev = -1;
  for (int q = static_cast<int>(r) - 1; q >= 0; --q) {
    if (row_count(static_cast<std::size_t>(q)) > 0) {
      prev = q;
      break;
    }
  }
  int next = -1;
  for (std::size_t q = r + 1; q < n; ++q) {
    if (row_count(q) > 0) {
      next = static_cast<int>(q);
      break;
    }
  }

  // Interior rows 1..rows; rows 0 and rows+1 hold the halos (zero at the
  // global boundary).
  std::vector<double> u((rows + 2) * nx, 0.0);
  std::vector<double> u2((rows + 2) * nx, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t gr = row_begin(r) + i;
    for (std::size_t j = 0; j < nx; ++j) {
      u[(i + 1) * nx + j] =
          static_cast<double>((gr * 31 + j * 17 + 1) % 97) / 97.0;
    }
  }

  const auto row_bytes = [&](std::vector<double>& g, std::size_t row) {
    return std::as_writable_bytes(std::span(g).subspan(row * nx, nx));
  };

  for (std::size_t it = 0; rows > 0 && it < p.iters; ++it) {
    // Halo exchange: direction 0 carries data downwards (to `next`),
    // direction 1 upwards (to `prev`).
    Request recv_top;   // halo row 0, from prev
    Request recv_bot;   // halo row rows+1, from next
    Request send_top;   // interior row 1, to prev
    Request send_bot;   // interior row rows, to next
    if (prev >= 0) {
      recv_top = c.irecv(static_cast<std::uint16_t>(prev),
                         stencil_tag(it, 0));
      auto top = row_bytes(u, 1);
      send_top = c.isend(static_cast<std::uint16_t>(prev),
                         stencil_tag(it, 1),
                         std::vector<std::byte>(top.begin(), top.end()));
    }
    if (next >= 0) {
      recv_bot = c.irecv(static_cast<std::uint16_t>(next),
                         stencil_tag(it, 1));
      auto bot = row_bytes(u, rows);
      send_bot = c.isend(static_cast<std::uint16_t>(next),
                         stencil_tag(it, 0),
                         std::vector<std::byte>(bot.begin(), bot.end()));
    }
    if (prev >= 0) {
      Inbound m = co_await c.wait(recv_top);
      std::memcpy(row_bytes(u, 0).data(), m.data.data(), m.data.size());
      (void)co_await c.wait(send_top);
    }
    if (next >= 0) {
      Inbound m = co_await c.wait(recv_bot);
      std::memcpy(row_bytes(u, rows + 1).data(), m.data.data(),
                  m.data.size());
      (void)co_await c.wait(send_bot);
    }

    // Jacobi update (5-point; 3-point when nx == 1), zero boundary.
    for (std::size_t i = 1; i <= rows; ++i) {
      for (std::size_t j = 0; j < nx; ++j) {
        const double up = u[(i - 1) * nx + j];
        const double down = u[(i + 1) * nx + j];
        const double left = j > 0 ? u[i * nx + j - 1] : 0.0;
        const double right = j + 1 < nx ? u[i * nx + j + 1] : 0.0;
        u2[i * nx + j] = 0.2 * (u[i * nx + j] + up + down + left + right);
      }
    }
    u.swap(u2);
    co_await c.compute(rows * nx * p.point_cycles);
  }

  double local = 0.0;
  for (std::size_t i = 1; i <= rows; ++i) {
    for (std::size_t j = 0; j < nx; ++j) {
      local += u[i * nx + j];
    }
  }
  co_await publish(c, local, p.iters, 0, out);
}

}  // namespace

World::Program make_stencil(StencilParams p, AppResult* out) {
  return [p, out](Comm& c) -> sim::Co<void> {
    co_await stencil_program(c, p, out);
  };
}

// ---------------------------------------------------------------------------
// Allreduce sweep.
// ---------------------------------------------------------------------------

namespace {

sim::Co<void> allreduce_program(Comm& c, AllreduceParams p, AppResult* out) {
  const std::size_t n = c.size();
  const std::size_t r = c.rank();
  double checksum = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  std::vector<double> v;
  const std::size_t min_elems = std::max<std::size_t>(1, p.min_elems);
  for (std::size_t size = min_elems; size <= p.max_elems; size *= 2) {
    for (std::size_t it = 0; it < p.iters; ++it) {
      v.resize(size);
      for (std::size_t i = 0; i < size; ++i) {
        v[i] = static_cast<double>((r + 1) * (i + 1)) * 0.001;
      }
      co_await c.allreduce(v, ReduceOp::kSum);
      // Host-computed reference; the ring's summation order differs from
      // this one, hence the relative tolerance.
      const double scale =
          static_cast<double>(n) * static_cast<double>(n + 1) / 2.0;
      for (std::size_t i = 0; i < size; ++i) {
        const double ref = static_cast<double>(i + 1) * 0.001 * scale;
        if (std::abs(v[i] - ref) > 1e-9 * std::max(1.0, std::abs(ref))) {
          ++errors;
        }
      }
      checksum += v[0] + v[size - 1];
      ++ops;
      co_await c.compute(2 * size);
    }
    if (size > p.max_elems / 2) {
      break;  // guard size *= 2 overflow for max near SIZE_MAX
    }
  }
  // `ops` counts this rank's calls; publish sums over ranks, so divide by
  // n is avoided by reporting the per-rank count only from rank 0's view:
  // every rank performed the same number, so publish ops only from rank 0.
  co_await publish(c, checksum, c.rank() == 0 ? ops : 0, errors, out);
}

}  // namespace

World::Program make_allreduce_sweep(AllreduceParams p, AppResult* out) {
  return [p, out](Comm& c) -> sim::Co<void> {
    co_await allreduce_program(c, p, out);
  };
}

// ---------------------------------------------------------------------------
// Key-value service.
// ---------------------------------------------------------------------------

namespace {

enum KvOp : std::uint8_t { kPut = 0, kGet = 1, kDone = 2 };

std::vector<std::byte> kv_request(KvOp op, std::uint64_t key,
                                  std::span<const std::byte> value) {
  std::vector<std::byte> m(16 + value.size());
  m[0] = static_cast<std::byte>(op);
  std::memcpy(m.data() + 8, &key, 8);
  if (!value.empty()) {
    std::memcpy(m.data() + 16, value.data(), value.size());
  }
  return m;
}

sim::Co<void> kv_server(Comm& c, const KvParams& p, std::size_t nservers,
                        std::size_t nclients, double* checksum,
                        std::uint64_t* ops) {
  std::map<std::uint64_t, std::vector<std::byte>> store;
  std::size_t done_seen = 0;
  while (done_seen < nclients) {
    Inbound m = co_await c.recv(kAnyRank, kKvReqTag);
    const auto op = static_cast<KvOp>(m.data.at(0));
    if (op == kDone) {
      ++done_seen;
      continue;
    }
    std::uint64_t key = 0;
    std::memcpy(&key, m.data.data() + 8, 8);
    co_await c.compute(p.op_cycles);
    std::vector<std::byte> reply;
    if (op == kPut) {
      store[key].assign(m.data.begin() + 16, m.data.end());
      reply.resize(1);
      reply[0] = static_cast<std::byte>(2);  // put ack
    } else {
      const auto it = store.find(key);
      if (it == store.end()) {
        reply.resize(1);
        reply[0] = static_cast<std::byte>(0);  // miss
      } else {
        reply.resize(1 + it->second.size());
        reply[0] = static_cast<std::byte>(1);  // hit
        std::memcpy(reply.data() + 1, it->second.data(),
                    it->second.size());
      }
    }
    co_await c.send(m.src_rank, kKvRepTag, reply);
    ++*ops;
  }
  // Server-side aggregate: what survived in the store.
  *checksum += static_cast<double>(store.size());
  for (const auto& [k, v] : store) {
    *checksum += fold(v) * 1e-6;
  }
  (void)nservers;
}

sim::Co<void> kv_client(Comm& c, const KvParams& p, std::size_t nservers,
                        double* checksum, std::uint64_t* ops) {
  sim::Rng rng(p.seed ^ (0x9e3779b97f4a7c15ull * (c.rank() + 1)));
  std::vector<std::byte> value(p.value_bytes);
  for (std::size_t i = 0; i < p.requests; ++i) {
    const std::uint64_t key = rng.below(p.keys);
    const auto server = static_cast<std::uint16_t>(key % nservers);
    if (rng.chance(0.5)) {
      for (std::size_t b = 0; b < value.size(); ++b) {
        value[b] = static_cast<std::byte>(c.rank() * 7 + i * 13 + b);
      }
      co_await c.send(server, kKvReqTag, kv_request(kPut, key, value));
    } else {
      co_await c.send(server, kKvReqTag, kv_request(kGet, key, {}));
    }
    Inbound rep = co_await c.recv(server, kKvRepTag);
    *checksum += fold(rep.data) * 1e-6;
    ++*ops;
  }
  for (std::uint16_t s = 0; s < nservers; ++s) {
    co_await c.send(s, kKvReqTag, kv_request(kDone, 0, {}));
  }
}

sim::Co<void> kv_program(Comm& c, KvParams p, AppResult* out) {
  const std::size_t n = c.size();
  const std::size_t nservers = std::min(std::max<std::size_t>(p.servers, 1),
                                        static_cast<std::size_t>(n));
  const std::size_t nclients = n - nservers;
  double checksum = 0.0;
  std::uint64_t ops = 0;
  if (c.rank() < nservers) {
    co_await kv_server(c, p, nservers, nclients, &checksum, &ops);
  } else {
    co_await kv_client(c, p, nservers, &checksum, &ops);
  }
  co_await c.barrier();
  co_await publish(c, checksum, ops, 0, out);
}

}  // namespace

World::Program make_kv(KvParams p, AppResult* out) {
  return [p, out](Comm& c) -> sim::Co<void> {
    co_await kv_program(c, p, out);
  };
}

}  // namespace sv::app

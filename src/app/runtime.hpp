// SMPI-style application runtime: run real parallel programs on the
// simulated machine.
//
// A World maps `nranks` coroutine processes round-robin onto the
// machine's nodes (rank r runs on node r % nodes, on that node's aP) and
// gives each a Comm with an MPI-flavored API: blocking and nonblocking
// tagged send/recv, barrier (dissemination), broadcast (binomial tree)
// and reduce/allreduce (ring algorithm). Communication goes through one
// app::Transport per node — msg, shm or reliable, selected at World
// construction — so the same program runs unmodified over every
// mechanism.
//
// Following the SMPI model, communications are simulated while
// computations are emulated: programs move real bytes and compute real
// values host-side at zero simulated cost, and simulated time is charged
// explicitly — per communication call through the ComputeModel, and for
// algorithmic work through Comm::compute().
//
// Determinism: every rank's process is an event-driven coroutine inside
// its owning node's domain; cross-node interaction happens only through
// the underlying mechanism; per-rank completion flags are written only by
// the owner domain. A World run is therefore bit-identical across
// threads={0,1,2,4} and fastpath on/off, like everything else in the
// machine (DESIGN.md §13).
#pragma once

#include <functional>
#include <memory>

#include "app/transport.hpp"
#include "sys/experiment.hpp"

namespace sv::app {

enum class TransportKind { kMsg, kShm, kReliable };

enum class ReduceOp { kSum, kMin, kMax };

/// Simulated cycles charged on the aP per communication call:
/// a fixed API overhead plus a per-word marshalling cost.
struct ComputeModel {
  std::uint64_t op_cycles = 200;
  std::uint64_t word_cycles = 1;  // per 4 payload bytes

  [[nodiscard]] std::uint64_t cost(std::size_t bytes) const {
    return op_cycles + word_cycles * ((bytes + 3) / 4);
  }
};

class World;

/// Handle to a pending nonblocking operation. Copyable; redeem with
/// Comm::wait(). Every request completes before its rank's process is
/// allowed to report done (a per-rank WaitGroup joins the stragglers).
class Request {
 public:
  Request() = default;
  [[nodiscard]] bool valid() const { return st_ != nullptr; }
  [[nodiscard]] bool done() const { return st_ && st_->completed.fired(); }

 private:
  friend class Comm;
  struct State {
    explicit State(sim::Kernel& k) : completed(k) {}
    sim::OneShot completed;
    Inbound msg;  // irecv result; empty for isend
  };
  std::shared_ptr<State> st_;
};

/// One rank's view of the world: the object a per-rank program receives.
class Comm {
 public:
  [[nodiscard]] std::uint16_t rank() const { return rank_; }
  [[nodiscard]] std::uint16_t size() const;
  [[nodiscard]] cpu::Processor& ap();
  [[nodiscard]] sim::Kernel& kernel();
  [[nodiscard]] World& world() { return *world_; }

  // --- Point-to-point ------------------------------------------------------
  sim::Co<void> send(std::uint16_t dst, std::uint32_t tag,
                     std::span<const std::byte> data);
  sim::Co<Inbound> recv(std::uint16_t src = kAnyRank,
                        std::uint32_t tag = kAnyTag);
  /// Nonblocking variants: the operation proceeds on a detached coroutine;
  /// wait() suspends until completion and yields the inbound message
  /// (empty for isend).
  Request isend(std::uint16_t dst, std::uint32_t tag,
                std::vector<std::byte> data);
  Request irecv(std::uint16_t src = kAnyRank, std::uint32_t tag = kAnyTag);
  sim::Co<Inbound> wait(Request r);

  // --- Collectives (every rank must call, in the same order) ---------------
  sim::Co<void> barrier();
  /// In-place binomial broadcast of `data` from `root`.
  sim::Co<void> bcast(std::uint16_t root, std::span<std::byte> data);
  /// Ring reduce-scatter + gather-to-root; `data` holds the result only
  /// at root (other ranks' buffers are scratch afterwards).
  sim::Co<void> reduce(std::uint16_t root, std::span<double> data,
                       ReduceOp op);
  /// Ring allreduce (reduce-scatter + allgather); in place on every rank.
  sim::Co<void> allreduce(std::span<double> data, ReduceOp op);

  // --- Emulated computation ------------------------------------------------
  /// Charge `cycles` of work on this rank's aP (the SMPI emulation rule:
  /// the actual arithmetic runs host-side, only its cost is simulated).
  sim::Co<void> compute(std::uint64_t cycles);

 private:
  friend class World;
  Comm(World* world, std::uint16_t rank) : world_(world), rank_(rank) {}

  sim::Co<void> send_impl(std::uint16_t dst, std::uint32_t tag,
                          std::span<const std::byte> data);
  sim::Co<Inbound> recv_impl(std::uint16_t src, std::uint32_t tag);
  sim::Co<void> isend_task(std::uint16_t dst, std::uint32_t tag,
                           std::vector<std::byte> data,
                           std::shared_ptr<Request::State> st);
  sim::Co<void> irecv_task(std::uint16_t src, std::uint32_t tag,
                           std::shared_ptr<Request::State> st);
  /// Shared ring reduce-scatter phase: afterwards rank r holds the fully
  /// reduced chunk (r + 1) % n of `data`.
  sim::Co<void> ring_reduce_scatter(std::span<double> data, ReduceOp op,
                                    std::uint32_t kind, std::uint16_t gen);
  /// Tag for collective kind `kind`, generation `gen`, round `round`
  /// (above kMaxUserTag, so user traffic can never match it).
  [[nodiscard]] static std::uint32_t coll_tag(std::uint32_t kind,
                                              std::uint16_t gen,
                                              std::uint32_t round);
  [[nodiscard]] Transport& transport();
  [[nodiscard]] sim::WaitGroup& wg();

  World* world_;
  std::uint16_t rank_;
  std::uint16_t gen_barrier_ = 0;
  std::uint16_t gen_bcast_ = 0;
  std::uint16_t gen_reduce_ = 0;
  std::uint16_t gen_allreduce_ = 0;
};

class World {
 public:
  struct Params {
    /// Processes to run; 0 means one per node. Ranks beyond the node
    /// count share nodes round-robin.
    std::size_t nranks = 0;
    TransportKind transport = TransportKind::kMsg;
    ShmTransport::Region shm_region = ShmTransport::Region::kNuma;
    ComputeModel compute;
    msg::ReliableChannel::Params reliable;
    sim::Tick shm_poll = 500 * sim::kNanosecond;
  };

  /// A per-rank program. Must be SPMD with respect to collectives.
  using Program = std::function<sim::Co<void>(Comm&)>;

  World(sys::Machine& machine, Params params);

  /// Start the transports and spawn `program` for every rank on its
  /// owning node's aP. Drive the machine afterwards with
  /// sys::run_until(machine, [&]{ return world.done(); }, deadline).
  void launch(const Program& program);

  /// True once every rank's program (and all its nonblocking requests)
  /// has completed. Valid at epoch boundaries under any threads= value.
  [[nodiscard]] bool done() const;

  [[nodiscard]] std::size_t nranks() const { return params_.nranks; }
  [[nodiscard]] sim::NodeId node_of(std::uint16_t rank) const {
    return static_cast<sim::NodeId>(rank % machine_.size());
  }
  [[nodiscard]] sys::Machine& machine() { return machine_; }
  [[nodiscard]] Transport& transport(sim::NodeId n) {
    return *transports_.at(n);
  }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Aggregate transport counters into `reg` under "app." (per node and
  /// machine totals) — byte-identical across thread counts.
  void add_stats(sim::StatRegistry& reg) const;

  /// Snapshot state: per-rank completion flags and collective generation
  /// counters, then every node's transport (mailboxes, reassembly,
  /// mechanism cursors). Call only at an epoch boundary.
  void ckpt_save(ckpt::Writer& w) const;

 private:
  friend class Comm;
  struct RankState {
    RankState(World* w, std::uint16_t r, sim::Kernel& k)
        : comm(w, r), wg(k) {}
    Comm comm;
    sim::WaitGroup wg;
    std::uint8_t finished = 0;  // written only by the owner domain
  };

  sim::Co<void> run_rank(RankState& rs, Program program);

  sys::Machine& machine_;
  Params params_;
  std::vector<std::unique_ptr<Transport>> transports_;  // per node
  std::deque<RankState> ranks_;                         // per rank, stable
  bool launched_ = false;
};

}  // namespace sv::app

#include "app/transport.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "ckpt/io.hpp"
#include "sim/crc32.hpp"

namespace sv::app {

namespace {

template <typename T>
void put(std::byte* out, std::size_t off, T v) {
  std::memcpy(out + off, &v, sizeof(T));
}

template <typename T>
T get(const std::byte* in, std::size_t off) {
  T v;
  std::memcpy(&v, in + off, sizeof(T));
  return v;
}

}  // namespace

void WireHeader::encode(std::byte* out) const {
  put(out, 0, src_rank);
  put(out, 2, dst_rank);
  put(out, 4, tag);
  put(out, 8, msg_seq);
  put(out, 10, frag);
  put(out, 12, nfrags);
  put(out, 14, len);
}

WireHeader WireHeader::decode(std::span<const std::byte> in) {
  if (in.size() < kBytes) {
    throw std::runtime_error("app::WireHeader: short frame");
  }
  WireHeader h;
  h.src_rank = get<std::uint16_t>(in.data(), 0);
  h.dst_rank = get<std::uint16_t>(in.data(), 2);
  h.tag = get<std::uint32_t>(in.data(), 4);
  h.msg_seq = get<std::uint16_t>(in.data(), 8);
  h.frag = get<std::uint16_t>(in.data(), 10);
  h.nfrags = get<std::uint16_t>(in.data(), 12);
  h.len = get<std::uint16_t>(in.data(), 14);
  return h;
}

// ---------------------------------------------------------------------------
// Transport base: fragmentation, reassembly, mailbox.
// ---------------------------------------------------------------------------

Transport::Transport(sys::Node& node, sim::Kernel& kernel,
                     std::size_t nranks)
    : node_(node),
      kernel_(kernel),
      nranks_(nranks),
      delivered_(kernel),
      mbox_(nranks),
      next_seq_(nranks * nranks, 0) {}

sim::Co<void> Transport::send(std::uint16_t src_rank, std::uint16_t dst_rank,
                              std::uint32_t tag,
                              std::span<const std::byte> data, bool local) {
  stats_.msgs_sent.inc();
  stats_.bytes_sent.inc(data.size());

  if (local) {
    // Same-node destination: no mechanism hop, straight into the mailbox.
    stats_.local_delivered.inc();
    deliver(src_rank, dst_rank, tag,
            std::vector<std::byte>(data.begin(), data.end()));
    co_return;
  }

  const std::size_t cap = frame_payload();
  const auto nfrags = static_cast<std::uint16_t>(
      data.empty() ? 1 : (data.size() + cap - 1) / cap);
  const std::uint16_t seq = next_seq_[src_rank * nranks_ + dst_rank]++;
  const auto dst_node =
      static_cast<sim::NodeId>(dst_rank % node_.params().num_nodes);

  std::vector<std::byte> frame;
  for (std::uint16_t f = 0; f < nfrags; ++f) {
    const std::size_t off = static_cast<std::size_t>(f) * cap;
    const std::size_t len = std::min(cap, data.size() - off);
    WireHeader h;
    h.src_rank = src_rank;
    h.dst_rank = dst_rank;
    h.tag = tag;
    h.msg_seq = seq;
    h.frag = f;
    h.nfrags = nfrags;
    h.len = static_cast<std::uint16_t>(len);
    frame.resize(WireHeader::kBytes + len);
    h.encode(frame.data());
    if (len > 0) {
      std::memcpy(frame.data() + WireHeader::kBytes, data.data() + off, len);
    }
    stats_.frames_sent.inc();
    co_await send_frame(dst_node, frame);
  }
}

sim::Co<Inbound> Transport::recv(std::uint16_t dst_rank,
                                 std::uint16_t src_filter,
                                 std::uint32_t tag_filter) {
  auto& q = mbox_.at(dst_rank);
  for (;;) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if ((src_filter == kAnyRank || it->src_rank == src_filter) &&
          (tag_filter == kAnyTag || it->tag == tag_filter)) {
        Inbound m = std::move(*it);
        q.erase(it);
        co_return m;
      }
    }
    co_await delivered_;
  }
}

void Transport::deliver(std::uint16_t src_rank, std::uint16_t dst_rank,
                        std::uint32_t tag, std::vector<std::byte> data) {
  stats_.msgs_delivered.inc();
  mbox_.at(dst_rank).push_back(Inbound{src_rank, tag, std::move(data)});
  delivered_.pulse();
}

void Transport::deliver_frame(std::span<const std::byte> frame) {
  const WireHeader h = WireHeader::decode(frame);
  if (frame.size() < WireHeader::kBytes + h.len) {
    throw std::runtime_error("app::Transport: truncated frame");
  }
  auto payload = frame.subspan(WireHeader::kBytes, h.len);

  if (h.nfrags == 1) {
    deliver(h.src_rank, h.dst_rank, h.tag,
            std::vector<std::byte>(payload.begin(), payload.end()));
    return;
  }

  // Reassembly keyed by (src, dst, seq): fragments of messages interleaved
  // by concurrent nonblocking sends sort themselves out.
  const std::uint64_t key = (static_cast<std::uint64_t>(h.src_rank) << 32) |
                            (static_cast<std::uint64_t>(h.dst_rank) << 16) |
                            h.msg_seq;
  Assembly& a = assembling_[key];
  if (a.parts.empty()) {
    a.tag = h.tag;
    a.parts.resize(h.nfrags);
  }
  a.parts.at(h.frag).assign(payload.begin(), payload.end());
  if (++a.got < h.nfrags) {
    return;
  }

  std::size_t total = 0;
  for (const auto& p : a.parts) {
    total += p.size();
  }
  std::vector<std::byte> data;
  data.reserve(total);
  for (const auto& p : a.parts) {
    data.insert(data.end(), p.begin(), p.end());
  }
  const std::uint32_t tag = a.tag;
  assembling_.erase(key);
  deliver(h.src_rank, h.dst_rank, tag, std::move(data));
}

// ---------------------------------------------------------------------------
// MsgTransport.
// ---------------------------------------------------------------------------

MsgTransport::MsgTransport(sys::Node& node, sim::Kernel& kernel,
                           msg::AddressMap map, std::size_t nranks)
    : Transport(node, kernel, nranks),
      ep_(node.ap(), node.endpoint_config()),
      map_(map) {}

void MsgTransport::start() { node_.ap().run(rx_loop()); }

sim::Co<void> MsgTransport::send_frame(sim::NodeId dst_node,
                                       std::span<const std::byte> frame) {
  co_await ep_.send(map_.user0(dst_node), frame);
}

sim::Co<void> MsgTransport::rx_loop() {
  for (;;) {
    msg::Message m = co_await ep_.recv();
    deliver_frame(m.data);
  }
}

// ---------------------------------------------------------------------------
// ReliableTransport.
// ---------------------------------------------------------------------------

ReliableTransport::ReliableTransport(sys::Node& node, sim::Kernel& kernel,
                                     msg::AddressMap map, std::size_t nranks,
                                     msg::ReliableChannel::Params params)
    : Transport(node, kernel, nranks),
      ep_(node.ap(), node.endpoint_config()),
      chan_(ep_, map, node.id(), params) {}

void ReliableTransport::start() {
  chan_.start();
  const auto nnodes = static_cast<sim::NodeId>(node_.params().num_nodes);
  for (sim::NodeId peer = 0; peer < nnodes; ++peer) {
    if (peer != node_.id()) {
      node_.ap().run(rx_loop(peer));
    }
  }
}

sim::Co<void> ReliableTransport::send_frame(sim::NodeId dst_node,
                                            std::span<const std::byte> frame) {
  co_await chan_.send(dst_node, frame);
}

sim::Co<void> ReliableTransport::rx_loop(sim::NodeId peer) {
  for (;;) {
    std::vector<std::byte> frame = co_await chan_.recv(peer);
    deliver_frame(frame);
  }
}

// ---------------------------------------------------------------------------
// ShmTransport.
// ---------------------------------------------------------------------------

ShmTransport::ShmTransport(sys::Node& node, sim::Kernel& kernel,
                           std::size_t nranks, std::size_t nnodes,
                           Region region, sim::Tick poll_interval)
    : Transport(node, kernel, nranks),
      region_(region),
      nnodes_(nnodes),
      poll_interval_(poll_interval),
      base_(region == Region::kNuma ? niu::kNumaBase : niu::kScomaBase),
      cached_(region == Region::kScoma) {
  if (!cached_) {
    // Uncached stores are posted: the aP fires them and moves on, and a
    // burst can overflow the home's 64-slot firmware request queue, whose
    // overflow path *discards* (divert to an unregistered miss queue).
    // Bound the posted stores each sender may have un-drained at any
    // home so that all peers together can never fill the queue, leaving
    // headroom for concurrent (synchronous, self-limiting) loads.
    const std::size_t peers = nnodes_ > 1 ? nnodes_ - 1 : 1;
    store_window_ = static_cast<std::uint32_t>(std::max<std::size_t>(
        1, (sys::Node::kFwSlots - 8) / peers - 1));
  }
  for (std::size_t n = 0; n < nnodes_; ++n) {
    tx_.emplace_back(TxRing{sim::Semaphore(kernel, 1)});
    rx_.emplace_back(RxRing{});
  }
}

mem::Addr ShmTransport::page_addr(sim::NodeId src, sim::NodeId dst) const {
  return base_ + static_cast<mem::Addr>((16 + src) * nnodes_ + dst) *
                     kPageBytes;
}

sim::Co<std::uint32_t> ShmTransport::load_u32(mem::Addr a) {
  co_return co_await node_.ap().load_scalar<std::uint32_t>(a, cached_);
}

sim::Co<void> ShmTransport::store_u32(mem::Addr a, std::uint32_t v) {
  co_await node_.ap().store_scalar<std::uint32_t>(a, v, cached_);
}

void ShmTransport::start() { node_.ap().run(rx_sweep()); }

sim::Co<void> ShmTransport::reserve_stores(TxRing& tx, mem::Addr page,
                                           std::uint32_t ops) {
  if (store_window_ == 0) {  // cached ring: stores block in the protocol
    co_return;
  }
  if (tx.unflushed + ops > store_window_) {
    tx.consumed_seen = co_await load_u32(page);
    tx.unflushed = 0;
  }
}

sim::Co<void> ShmTransport::send_frame(sim::NodeId dst_node,
                                       std::span<const std::byte> frame) {
  TxRing& tx = tx_.at(dst_node);
  co_await tx.gate.acquire();
  const mem::Addr page = page_addr(node_.id(), dst_node);

  // Wait for a free slot: the consumer cursor lives in the receiver-homed
  // page, so this poll is the sender's (remote) cost, paid only under
  // backpressure.
  while (tx.next_seq - tx.consumed_seen > kSlots) {
    tx.consumed_seen = co_await load_u32(page);
    tx.unflushed = 0;  // a completed read drains all earlier posted stores
    if (tx.next_seq - tx.consumed_seen > kSlots) {
      co_await sim::delay(kernel_, poll_interval_);
    }
  }

  const mem::Addr slot =
      page + kSlotBytes + ((tx.next_seq - 1) % kSlots) * kSlotBytes;
  // Payload and length first, the slot's seq word last: stores from one
  // sender reach the home in order, so a seq match guarantees the frame
  // bytes are already there.
  co_await reserve_stores(tx, page, 1);
  co_await store_u32(slot + 4, static_cast<std::uint32_t>(frame.size()));
  ++tx.unflushed;
  std::size_t off = 0;
  while (off < frame.size()) {
    std::size_t chunk = frame.size() - off;
    if (store_window_ != 0) {
      co_await reserve_stores(tx, page, 1);
      chunk = std::min<std::size_t>(
          chunk, std::size_t{store_window_ - tx.unflushed} * 8);
      chunk = std::max<std::size_t>(chunk, 1);
    }
    const auto part = frame.subspan(off, chunk);
    if (cached_) {
      co_await node_.ap().store(slot + kSlotDataOff + off, part);
    } else {
      co_await node_.ap().store_uncached(slot + kSlotDataOff + off, part);
    }
    tx.unflushed += static_cast<std::uint32_t>((chunk + 7) / 8);
    off += chunk;
  }
  co_await reserve_stores(tx, page, 1);
  co_await store_u32(slot, tx.next_seq);
  ++tx.unflushed;
  ++tx.next_seq;
  tx.gate.release();
}

sim::Co<void> ShmTransport::rx_sweep() {
  const auto self = node_.id();
  std::vector<std::byte> frame;
  for (;;) {
    bool any = false;
    for (sim::NodeId src = 0; src < static_cast<sim::NodeId>(nnodes_);
         ++src) {
      if (src == self) {
        continue;
      }
      RxRing& rx = rx_.at(src);
      const mem::Addr page = page_addr(src, self);
      for (;;) {
        const mem::Addr slot =
            page + kSlotBytes + ((rx.expected - 1) % kSlots) * kSlotBytes;
        const std::uint32_t seq = co_await load_u32(slot);
        if (seq != rx.expected) {
          break;
        }
        const std::uint32_t len = co_await load_u32(slot + 4);
        if (len > kSlotBytes - kSlotDataOff) {
          throw std::runtime_error("app::ShmTransport: bad slot length");
        }
        frame.resize(len);
        if (cached_) {
          co_await node_.ap().load(slot + kSlotDataOff, frame);
        } else {
          co_await node_.ap().load_uncached(slot + kSlotDataOff, frame);
        }
        deliver_frame(frame);
        // Publish the new consumer cursor (a local store: the page is
        // homed here) so the sender can reuse the slot.
        co_await store_u32(page, rx.expected);
        ++rx.expected;
        any = true;
      }
    }
    if (!any) {
      co_await sim::delay(kernel_, poll_interval_);
    }
  }
}

void Transport::ckpt_save(ckpt::Writer& w) const {
  w.u64(stats_.msgs_sent.value());
  w.u64(stats_.frames_sent.value());
  w.u64(stats_.bytes_sent.value());
  w.u64(stats_.msgs_delivered.value());
  w.u64(stats_.local_delivered.value());
  for (const std::uint16_t seq : next_seq_) {
    w.u16(seq);
  }
  // Mailbox: per-rank depth plus a digest over (src, tag, payload).
  for (const auto& q : mbox_) {
    w.u64(q.size());
    std::uint32_t crc = 0;
    for (const Inbound& m : q) {
      crc = sim::crc32(std::as_bytes(std::span(&m.src_rank, 1)), crc);
      crc = sim::crc32(std::as_bytes(std::span(&m.tag, 1)), crc);
      crc = sim::crc32(m.data, crc);
    }
    w.u32(crc);
  }
  // Reassembly buffers, in (src, dst, seq) key order (std::map).
  w.u64(assembling_.size());
  std::uint32_t crc = 0;
  for (const auto& [key, asm_] : assembling_) {
    crc = sim::crc32(std::as_bytes(std::span(&key, 1)), crc);
    crc = sim::crc32(std::as_bytes(std::span(&asm_.tag, 1)), crc);
    crc = sim::crc32(std::as_bytes(std::span(&asm_.got, 1)), crc);
    for (const auto& part : asm_.parts) {
      crc = sim::crc32(part, crc);
    }
  }
  w.u32(crc);
}

void ReliableTransport::ckpt_save(ckpt::Writer& w) const {
  Transport::ckpt_save(w);
  chan_.ckpt_save(w);
}

void ShmTransport::ckpt_save(ckpt::Writer& w) const {
  Transport::ckpt_save(w);
  for (const TxRing& tx : tx_) {
    w.u32(tx.next_seq);
    w.u32(tx.consumed_seen);
    w.u32(tx.unflushed);
  }
  for (const RxRing& rx : rx_) {
    w.u32(rx.expected);
  }
}

}  // namespace sv::app

#include "app/runtime.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "ckpt/io.hpp"

namespace sv::app {

namespace {

// Collective tag-space kinds (bits 24..27 of the tag). Reduce and
// allreduce use distinct kinds for their shared reduce-scatter phase so a
// straggling rank's frames can never match the other collective's.
constexpr std::uint32_t kBarrierKind = 1;
constexpr std::uint32_t kBcastKind = 2;
constexpr std::uint32_t kReduceRsKind = 3;
constexpr std::uint32_t kAllreduceRsKind = 4;
constexpr std::uint32_t kAllgatherKind = 5;
constexpr std::uint32_t kReduceGatherKind = 6;

void combine(ReduceOp op, std::span<double> into,
             std::span<const double> from) {
  assert(into.size() == from.size());
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < into.size(); ++i) {
        into[i] += from[i];
      }
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < into.size(); ++i) {
        into[i] = std::min(into[i], from[i]);
      }
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < into.size(); ++i) {
        into[i] = std::max(into[i], from[i]);
      }
      break;
  }
}

/// Chunk c of n for the ring algorithms (balanced, order-preserving).
std::span<double> chunk_of(std::span<double> v, std::size_t c,
                           std::size_t n) {
  const std::size_t b = v.size() * c / n;
  const std::size_t e = v.size() * (c + 1) / n;
  return v.subspan(b, e - b);
}

std::vector<std::byte> to_bytes(std::span<const double> v) {
  std::vector<std::byte> out(v.size() * sizeof(double));
  if (!v.empty()) {
    std::memcpy(out.data(), v.data(), out.size());
  }
  return out;
}

void from_bytes(std::span<const std::byte> in, std::span<double> out) {
  if (in.size() != out.size() * sizeof(double)) {
    throw std::runtime_error("app: collective payload size mismatch");
  }
  if (!out.empty()) {
    std::memcpy(out.data(), in.data(), in.size());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Comm.
// ---------------------------------------------------------------------------

std::uint16_t Comm::size() const {
  return static_cast<std::uint16_t>(world_->nranks());
}

cpu::Processor& Comm::ap() {
  return world_->machine().node(world_->node_of(rank_)).ap();
}

sim::Kernel& Comm::kernel() {
  return world_->machine().domain(world_->node_of(rank_));
}

Transport& Comm::transport() {
  return world_->transport(world_->node_of(rank_));
}

sim::WaitGroup& Comm::wg() { return world_->ranks_.at(rank_).wg; }

std::uint32_t Comm::coll_tag(std::uint32_t kind, std::uint16_t gen,
                             std::uint32_t round) {
  return 0x8000'0000u | (kind << 24) | (static_cast<std::uint32_t>(gen) << 8) |
         (round & 0xFFu);
}

sim::Co<void> Comm::compute(std::uint64_t cycles) {
  co_await ap().work(cycles);
}

sim::Co<void> Comm::send_impl(std::uint16_t dst, std::uint32_t tag,
                              std::span<const std::byte> data) {
  co_await transport().send(rank_, dst, tag, data,
                            world_->node_of(dst) == world_->node_of(rank_));
}

sim::Co<Inbound> Comm::recv_impl(std::uint16_t src, std::uint32_t tag) {
  co_return co_await transport().recv(rank_, src, tag);
}

sim::Co<void> Comm::send(std::uint16_t dst, std::uint32_t tag,
                         std::span<const std::byte> data) {
  co_await compute(world_->params().compute.cost(data.size()));
  co_await send_impl(dst, tag, data);
}

sim::Co<Inbound> Comm::recv(std::uint16_t src, std::uint32_t tag) {
  Inbound m = co_await recv_impl(src, tag);
  co_await compute(world_->params().compute.cost(m.data.size()));
  co_return m;
}

sim::Co<void> Comm::isend_task(std::uint16_t dst, std::uint32_t tag,
                               std::vector<std::byte> data,
                               std::shared_ptr<Request::State> st) {
  co_await compute(world_->params().compute.cost(data.size()));
  co_await send_impl(dst, tag, data);
  st->completed.fire();
  wg().done();
}

sim::Co<void> Comm::irecv_task(std::uint16_t src, std::uint32_t tag,
                               std::shared_ptr<Request::State> st) {
  st->msg = co_await recv_impl(src, tag);
  co_await compute(world_->params().compute.cost(st->msg.data.size()));
  st->completed.fire();
  wg().done();
}

Request Comm::isend(std::uint16_t dst, std::uint32_t tag,
                    std::vector<std::byte> data) {
  Request r;
  r.st_ = std::make_shared<Request::State>(kernel());
  wg().add();
  ap().run(isend_task(dst, tag, std::move(data), r.st_));
  return r;
}

Request Comm::irecv(std::uint16_t src, std::uint32_t tag) {
  Request r;
  r.st_ = std::make_shared<Request::State>(kernel());
  wg().add();
  ap().run(irecv_task(src, tag, r.st_));
  return r;
}

sim::Co<Inbound> Comm::wait(Request r) {
  if (!r.valid()) {
    throw std::logic_error("app::Comm::wait: empty request");
  }
  co_await r.st_->completed;
  co_return std::move(r.st_->msg);
}

sim::Co<void> Comm::barrier() {
  const std::uint16_t gen = gen_barrier_++;
  const std::uint32_t n = size();
  std::uint32_t round = 0;
  // Dissemination barrier: log2(n) rounds of (send to rank+2^k, recv from
  // rank-2^k), no root bottleneck.
  for (std::uint32_t dist = 1; dist < n; dist <<= 1, ++round) {
    const auto dst = static_cast<std::uint16_t>((rank_ + dist) % n);
    const auto src = static_cast<std::uint16_t>((rank_ + n - dist) % n);
    const std::uint32_t tag = coll_tag(kBarrierKind, gen, round);
    Request rq = isend(dst, tag, {});
    (void)co_await recv(src, tag);
    (void)co_await wait(rq);
  }
}

sim::Co<void> Comm::bcast(std::uint16_t root, std::span<std::byte> data) {
  const std::uint16_t gen = gen_bcast_++;
  const std::uint32_t n = size();
  if (n <= 1) {
    co_return;
  }
  // Binomial tree on the rank space rotated so `root` is virtual rank 0.
  // A rank receives once at its lowest set virtual-rank bit, then relays
  // down every lower bit; the tag's round field is that bit index, which
  // both sides compute identically.
  const std::uint32_t vr = (rank_ + n - root) % n;
  std::uint32_t mask = 1;
  while (mask < n) {
    if ((vr & mask) != 0) {
      const auto src = static_cast<std::uint16_t>((vr - mask + root) % n);
      Inbound m = co_await recv(
          src, coll_tag(kBcastKind, gen, std::countr_zero(mask)));
      if (m.data.size() != data.size()) {
        throw std::runtime_error("app::bcast: size mismatch");
      }
      if (!data.empty()) {
        std::memcpy(data.data(), m.data.data(), data.size());
      }
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const auto dst = static_cast<std::uint16_t>((vr + mask + root) % n);
      co_await send(dst, coll_tag(kBcastKind, gen, std::countr_zero(mask)),
                    data);
    }
    mask >>= 1;
  }
}

sim::Co<void> Comm::ring_reduce_scatter(std::span<double> data, ReduceOp op,
                                        std::uint32_t kind,
                                        std::uint16_t gen) {
  const std::uint32_t n = size();
  const auto right = static_cast<std::uint16_t>((rank_ + 1) % n);
  const auto left = static_cast<std::uint16_t>((rank_ + n - 1) % n);
  std::vector<double> incoming;
  for (std::uint32_t step = 0; step < n - 1; ++step) {
    const std::size_t sc = (rank_ + n - step) % n;
    const std::size_t rc = (rank_ + n - step - 1) % n;
    const std::uint32_t tag = coll_tag(kind, gen, step);
    Request rq = isend(right, tag, to_bytes(chunk_of(data, sc, n)));
    Inbound m = co_await recv(left, tag);
    auto rchunk = chunk_of(data, rc, n);
    incoming.resize(rchunk.size());
    from_bytes(m.data, incoming);
    combine(op, rchunk, incoming);
    (void)co_await wait(rq);
  }
}

sim::Co<void> Comm::allreduce(std::span<double> data, ReduceOp op) {
  const std::uint16_t gen = gen_allreduce_++;
  const std::uint32_t n = size();
  if (n <= 1) {
    co_return;
  }
  co_await ring_reduce_scatter(data, op, kAllreduceRsKind, gen);
  // Allgather: circulate the fully reduced chunks around the ring.
  const auto right = static_cast<std::uint16_t>((rank_ + 1) % n);
  const auto left = static_cast<std::uint16_t>((rank_ + n - 1) % n);
  for (std::uint32_t step = 0; step < n - 1; ++step) {
    const std::size_t sc = (rank_ + 1 + n - step) % n;
    const std::size_t rc = (rank_ + n - step) % n;
    const std::uint32_t tag = coll_tag(kAllgatherKind, gen, step);
    Request rq = isend(right, tag, to_bytes(chunk_of(data, sc, n)));
    Inbound m = co_await recv(left, tag);
    from_bytes(m.data, chunk_of(data, rc, n));
    (void)co_await wait(rq);
  }
}

sim::Co<void> Comm::reduce(std::uint16_t root, std::span<double> data,
                           ReduceOp op) {
  const std::uint16_t gen = gen_reduce_++;
  const std::uint32_t n = size();
  if (n <= 1) {
    co_return;
  }
  co_await ring_reduce_scatter(data, op, kReduceRsKind, gen);
  // Gather: every rank owns one reduced chunk; forward them to root.
  if (rank_ != root) {
    const std::size_t oc = (rank_ + 1) % n;
    co_await send(root,
                  coll_tag(kReduceGatherKind, gen,
                           static_cast<std::uint32_t>(oc)),
                  to_bytes(chunk_of(data, oc, n)));
  } else {
    for (std::uint16_t peer = 0; peer < n; ++peer) {
      if (peer == root) {
        continue;
      }
      const std::size_t c = (peer + 1) % n;
      Inbound m = co_await recv(
          peer, coll_tag(kReduceGatherKind, gen,
                         static_cast<std::uint32_t>(c)));
      from_bytes(m.data, chunk_of(data, c, n));
    }
  }
}

// ---------------------------------------------------------------------------
// World.
// ---------------------------------------------------------------------------

World::World(sys::Machine& machine, Params params)
    : machine_(machine), params_(params) {
  if (params_.nranks == 0) {
    params_.nranks = machine_.size();
  }
  const auto map = machine_.addr_map();
  for (sim::NodeId n = 0; n < static_cast<sim::NodeId>(machine_.size());
       ++n) {
    auto& node = machine_.node(n);
    auto& k = machine_.domain(n);
    switch (params_.transport) {
      case TransportKind::kMsg:
        transports_.push_back(
            std::make_unique<MsgTransport>(node, k, map, params_.nranks));
        break;
      case TransportKind::kReliable:
        transports_.push_back(std::make_unique<ReliableTransport>(
            node, k, map, params_.nranks, params_.reliable));
        break;
      case TransportKind::kShm:
        transports_.push_back(std::make_unique<ShmTransport>(
            node, k, params_.nranks, machine_.size(), params_.shm_region,
            params_.shm_poll));
        break;
    }
  }
}

void World::launch(const Program& program) {
  assert(!launched_ && "World::launch called twice");
  launched_ = true;
  for (auto& t : transports_) {
    t->start();
  }
  for (std::uint16_t r = 0; r < params_.nranks; ++r) {
    ranks_.emplace_back(this, r, machine_.domain(node_of(r)));
  }
  for (std::uint16_t r = 0; r < params_.nranks; ++r) {
    machine_.node(node_of(r)).ap().run(run_rank(ranks_[r], program));
  }
}

sim::Co<void> World::run_rank(RankState& rs, Program program) {
  co_await program(rs.comm);
  // Join stragglers: a rank is not done until every nonblocking request
  // it issued has completed.
  co_await rs.wg.wait();
  rs.finished = 1;
}

bool World::done() const {
  if (!launched_) {
    return false;
  }
  for (const auto& rs : ranks_) {
    if (rs.finished == 0) {
      return false;
    }
  }
  return true;
}

void World::add_stats(sim::StatRegistry& reg) const {
  std::uint64_t msgs = 0;
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t delivered = 0;
  std::uint64_t local = 0;
  for (std::size_t n = 0; n < transports_.size(); ++n) {
    const auto& s = transports_[n]->stats();
    const std::string p = "app.n" + std::to_string(n) + ".";
    reg.set(p + "msgs_sent", static_cast<double>(s.msgs_sent.value()));
    reg.set(p + "frames_sent", static_cast<double>(s.frames_sent.value()));
    reg.set(p + "bytes_sent", static_cast<double>(s.bytes_sent.value()));
    reg.set(p + "msgs_delivered",
            static_cast<double>(s.msgs_delivered.value()));
    reg.set(p + "local_delivered",
            static_cast<double>(s.local_delivered.value()));
    msgs += s.msgs_sent.value();
    frames += s.frames_sent.value();
    bytes += s.bytes_sent.value();
    delivered += s.msgs_delivered.value();
    local += s.local_delivered.value();
  }
  reg.set("app.total.msgs_sent", static_cast<double>(msgs));
  reg.set("app.total.frames_sent", static_cast<double>(frames));
  reg.set("app.total.bytes_sent", static_cast<double>(bytes));
  reg.set("app.total.msgs_delivered", static_cast<double>(delivered));
  reg.set("app.total.local_delivered", static_cast<double>(local));
}

void World::ckpt_save(ckpt::Writer& w) const {
  w.u64(ranks_.size());
  for (const RankState& rs : ranks_) {
    w.u8(rs.finished);
    w.u16(rs.comm.gen_barrier_);
    w.u16(rs.comm.gen_bcast_);
    w.u16(rs.comm.gen_reduce_);
    w.u16(rs.comm.gen_allreduce_);
  }
  w.u64(transports_.size());
  for (const auto& t : transports_) {
    t->ckpt_save(w);
  }
}

}  // namespace sv::app

// Mechanism-independent message transport for the application runtime.
//
// The runtime (src/app/runtime.hpp) speaks one interface — ranked,
// tagged, arbitrary-size messages — and each concrete Transport maps it
// onto one of the machine's communication mechanisms:
//
//   MsgTransport       Basic messages over a dedicated user Endpoint
//   ReliableTransport  ReliableChannel streams (survives a lossy fabric)
//   ShmTransport       single-writer rings in the NUMA (or S-COMA)
//                      shared-memory window
//
// A Transport instance lives on one node and is driven entirely by that
// node's aP: sends run on the sending rank's coroutine, receives are fed
// by per-node dispatcher coroutines that parse arriving frames and
// complete messages into a tag-matching mailbox. Cross-node interaction
// happens only through the underlying mechanism, so every transport
// composes with the partitioned machine (bit-identical across threads=N)
// and with fault injection.
//
// Wire format: every fragment starts with a 16-byte header carrying the
// (src_rank, dst_rank, tag) triple plus fragmentation bookkeeping; large
// application messages are split into as many frames as the mechanism's
// payload capacity requires and reassembled keyed by (src, dst, seq), so
// interleaved messages from concurrent nonblocking sends cannot corrupt
// each other.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "msg/reliable.hpp"
#include "sim/stats.hpp"
#include "sys/node.hpp"

namespace sv::ckpt {
class Writer;
}  // namespace sv::ckpt

namespace sv::app {

/// recv() wildcards.
inline constexpr std::uint16_t kAnyRank = 0xFFFF;
inline constexpr std::uint32_t kAnyTag = 0xFFFF'FFFF;
/// Application tags must stay below this; the collective implementations
/// own the rest of the tag space (runtime.cpp).
inline constexpr std::uint32_t kMaxUserTag = 0x3FFF'FFFF;

/// Per-fragment wire header (16 bytes, little-endian fields).
struct WireHeader {
  std::uint16_t src_rank = 0;
  std::uint16_t dst_rank = 0;
  std::uint32_t tag = 0;
  std::uint16_t msg_seq = 0;  // per (src, dst) message counter
  std::uint16_t frag = 0;     // fragment index
  std::uint16_t nfrags = 1;   // fragments in this message
  std::uint16_t len = 0;      // payload bytes in this fragment

  static constexpr std::size_t kBytes = 16;
  void encode(std::byte* out) const;
  [[nodiscard]] static WireHeader decode(std::span<const std::byte> in);
};

/// A completed inbound message, as recv() hands it to the application.
struct Inbound {
  std::uint16_t src_rank = 0;
  std::uint32_t tag = 0;
  std::vector<std::byte> data;
};

struct TransportStats {
  sim::Counter msgs_sent;        // application messages entered
  sim::Counter frames_sent;      // mechanism frames launched (excl. local)
  sim::Counter bytes_sent;       // application payload bytes entered
  sim::Counter msgs_delivered;   // completed messages (incl. local)
  sim::Counter local_delivered;  // same-node short-circuited messages
};

/// Base class: fragmentation, reassembly and the tag-matching mailbox.
/// Subclasses provide the per-frame mechanism hop.
class Transport {
 public:
  Transport(sys::Node& node, sim::Kernel& kernel, std::size_t nranks);
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Spawn dispatcher coroutines on the node's aP. Call once before any
  /// traffic; dispatchers run forever (completion is predicate-based, as
  /// everywhere in the machine).
  virtual void start() = 0;
  [[nodiscard]] virtual const char* kind() const = 0;

  /// Hand one application message to the mechanism. Returns when every
  /// fragment has been accepted (queued/launched), not when delivered.
  /// `local` marks a destination rank living on this same node: the
  /// message short-circuits straight into the mailbox.
  sim::Co<void> send(std::uint16_t src_rank, std::uint16_t dst_rank,
                     std::uint32_t tag, std::span<const std::byte> data,
                     bool local);

  /// First queued message for `dst_rank` matching the (src, tag) filter,
  /// FIFO per filter; suspends until one completes. kAnyRank / kAnyTag
  /// match everything.
  sim::Co<Inbound> recv(std::uint16_t dst_rank, std::uint16_t src_filter,
                        std::uint32_t tag_filter);

  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  [[nodiscard]] sys::Node& node() { return node_; }

  /// Snapshot state. The base writes the counters, per-pair sequence
  /// cursors, and digests of the mailbox and reassembly buffers;
  /// mechanism subclasses with extra state chain back to this.
  virtual void ckpt_save(ckpt::Writer& w) const;

 protected:
  /// Largest application payload one mechanism frame can carry.
  [[nodiscard]] virtual std::size_t frame_payload() const = 0;
  /// Move one wire frame (header + payload) to `dst_node`.
  virtual sim::Co<void> send_frame(sim::NodeId dst_node,
                                   std::span<const std::byte> frame) = 0;

  /// Dispatchers feed every arriving frame here; completed messages land
  /// in the mailbox and wake matching receivers.
  void deliver_frame(std::span<const std::byte> frame);

  sys::Node& node_;
  sim::Kernel& kernel_;
  std::size_t nranks_;

 private:
  struct Assembly {
    std::uint32_t tag = 0;
    std::uint16_t got = 0;
    std::vector<std::vector<std::byte>> parts;
  };

  void deliver(std::uint16_t src_rank, std::uint16_t dst_rank,
               std::uint32_t tag, std::vector<std::byte> data);

  sim::Signal delivered_;
  TransportStats stats_;
  std::vector<std::deque<Inbound>> mbox_;      // [dst_rank]
  std::vector<std::uint16_t> next_seq_;        // [src * nranks + dst]
  std::map<std::uint64_t, Assembly> assembling_;
};

/// Basic messages over a dedicated user endpoint (Express-class latency;
/// relies on the Arctic fabric's loss-free ordered delivery).
class MsgTransport final : public Transport {
 public:
  MsgTransport(sys::Node& node, sim::Kernel& kernel, msg::AddressMap map,
               std::size_t nranks);

  void start() override;
  [[nodiscard]] const char* kind() const override { return "msg"; }

 protected:
  [[nodiscard]] std::size_t frame_payload() const override {
    return niu::kBasicMaxData - WireHeader::kBytes;
  }
  sim::Co<void> send_frame(sim::NodeId dst_node,
                           std::span<const std::byte> frame) override;

 private:
  sim::Co<void> rx_loop();

  msg::Endpoint ep_;
  msg::AddressMap map_;
};

/// ReliableChannel streams: go-back-N recovery on top of Basic messages,
/// for runs where the fabric drops or corrupts packets (src/fault/).
class ReliableTransport final : public Transport {
 public:
  ReliableTransport(sys::Node& node, sim::Kernel& kernel,
                    msg::AddressMap map, std::size_t nranks,
                    msg::ReliableChannel::Params params);

  void start() override;
  [[nodiscard]] const char* kind() const override { return "reliable"; }

  [[nodiscard]] msg::ReliableChannel& channel() { return chan_; }

  /// Base state plus the reliable channel's windows and timers.
  void ckpt_save(ckpt::Writer& w) const override;

 protected:
  [[nodiscard]] std::size_t frame_payload() const override {
    return msg::ReliableChannel::kMaxPayload - WireHeader::kBytes;
  }
  sim::Co<void> send_frame(sim::NodeId dst_node,
                           std::span<const std::byte> frame) override;

 private:
  sim::Co<void> rx_loop(sim::NodeId peer);

  msg::Endpoint ep_;
  msg::ReliableChannel chan_;
};

/// Shared-memory rings: one single-writer ring page per directed node
/// pair, placed so its NUMA home is the *receiver* — the receiver's
/// polling sweep touches only local pages while the sender pays the
/// remote-store cost, matching how shared-memory message queues are laid
/// out in practice. With Region::kScoma the same layout runs over the
/// cache-coherent S-COMA window instead (plain cached accesses).
class ShmTransport final : public Transport {
 public:
  enum class Region { kNuma, kScoma };

  /// Ring geometry: one 4 KB page per (src, dst) pair, a consumer
  /// cursor word at offset 0 and 31 slots of 128 bytes from offset 128.
  /// Each slot carries (seq u32, len u32, frame). Slot seq values are
  /// strictly increasing per slot (seq, seq+31, ...), so a stale value
  /// can never alias a fresh one.
  static constexpr std::uint32_t kPageBytes = 4096;
  static constexpr std::uint32_t kSlotBytes = 128;
  static constexpr std::uint32_t kSlots = 31;
  static constexpr std::uint32_t kSlotDataOff = 8;

  ShmTransport(sys::Node& node, sim::Kernel& kernel, std::size_t nranks,
               std::size_t nnodes, Region region, sim::Tick poll_interval);

  void start() override;
  [[nodiscard]] const char* kind() const override {
    return region_ == Region::kNuma ? "shm" : "shm-scoma";
  }

  /// Base state plus every ring's sequence/flow-control cursors.
  void ckpt_save(ckpt::Writer& w) const override;

 protected:
  [[nodiscard]] std::size_t frame_payload() const override {
    return kSlotBytes - kSlotDataOff - WireHeader::kBytes;  // 104
  }
  sim::Co<void> send_frame(sim::NodeId dst_node,
                           std::span<const std::byte> frame) override;

 private:
  struct TxRing {
    sim::Semaphore gate;  // serializes senders sharing this pair page
    std::uint32_t next_seq = 1;
    std::uint32_t consumed_seen = 0;
    /// Posted 8-byte stores since the last completed round-trip to this
    /// home (uncached rings only; cached stores block in the coherence
    /// protocol and need no extra flow control).
    std::uint32_t unflushed = 0;
  };
  struct RxRing {
    std::uint32_t expected = 1;
  };

  /// Pair pages start 16 node-strides into the window, leaving the low
  /// pages free for application data. Page (16 + src) * nnodes + dst is
  /// congruent to dst modulo nnodes, i.e. NUMA-homed at the receiver.
  [[nodiscard]] mem::Addr page_addr(sim::NodeId src, sim::NodeId dst) const;
  sim::Co<std::uint32_t> load_u32(mem::Addr a);
  sim::Co<void> store_u32(mem::Addr a, std::uint32_t v);

  sim::Co<void> rx_sweep();

  /// Ensure the next `ops` posted stores to `tx`'s home cannot overflow
  /// the home's firmware request queue: once the per-destination window
  /// is exhausted, read the consumer word — client-to-home delivery is
  /// FIFO, so a completed read proves every earlier posted store has been
  /// drained from the queue.
  sim::Co<void> reserve_stores(TxRing& tx, mem::Addr page,
                               std::uint32_t ops);

  Region region_;
  std::size_t nnodes_;
  sim::Tick poll_interval_;
  mem::Addr base_;
  bool cached_;
  std::uint32_t store_window_ = 0;  // 0 = no windowing (cached rings)
  std::deque<TxRing> tx_;  // [dst_node]
  std::deque<RxRing> rx_;  // [src_node]
};

}  // namespace sv::app

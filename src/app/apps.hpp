// The macro-benchmark applications shipped with the app runtime: real
// parallel kernels written against app::Comm, transport-agnostic by
// construction. Each make_* returns a World::Program; run it with
// World::launch() and read the aggregate result (written by rank 0's
// node only, so it is safe to read after completion under any threads=
// value) from the AppResult the caller owns.
#pragma once

#include "app/runtime.hpp"

namespace sv::app {

/// Aggregate outcome of one application run. `checksum` is an
/// application-defined reduction over all ranks (bit-identical across
/// thread counts for a given transport); `ops` counts application-level
/// operations (stencil iterations, allreduce calls, KV requests).
struct AppResult {
  double checksum = 0.0;
  std::uint64_t ops = 0;
  /// Tolerance failures against the host-computed reference (0 = clean).
  std::uint64_t errors = 0;
};

/// Jacobi stencil with halo exchange: an ny-row by nx-column grid,
/// row-block distributed. nx == 1 degenerates to the 1-D 3-point
/// stencil; nx > 1 is the 2-D 5-point one. Each iteration exchanges
/// boundary rows with the neighbouring ranks (nonblocking send/recv
/// both ways, then wait), computes the Jacobi update host-side and
/// charges the per-point compute cost. Ranks owning no rows (ny <
/// nranks) only join the final reduction.
struct StencilParams {
  std::size_t nx = 16;           // columns per row
  std::size_t ny = 16;           // rows, split across ranks
  std::size_t iters = 4;
  std::uint64_t point_cycles = 5;  // emulated cost per grid point update
};
World::Program make_stencil(StencilParams p, AppResult* out);

/// Ring-allreduce sweep: for each vector size from min_elems to
/// max_elems (doubling), `iters` allreduces of freshly initialised
/// data, each validated against the host-computed reference with a
/// relative tolerance (ring summation order differs from the reference
/// order).
struct AllreduceParams {
  std::size_t min_elems = 4;
  std::size_t max_elems = 64;
  std::size_t iters = 2;
};
World::Program make_allreduce_sweep(AllreduceParams p, AppResult* out);

/// Key-value request/reply service: the first `servers` ranks serve a
/// key space partitioned by key % servers; the remaining ranks are
/// clients issuing `requests` seeded random put/get operations each and
/// checksumming every reply. Clients announce completion to every
/// server; servers exit after hearing from all clients; everyone joins
/// a final reduction of per-rank checksums and counters.
struct KvParams {
  std::size_t servers = 1;
  std::size_t requests = 64;      // per client
  std::size_t keys = 128;         // key space size
  std::size_t value_bytes = 32;
  std::uint64_t seed = 1;
  std::uint64_t op_cycles = 300;  // emulated server cost per request
};
World::Program make_kv(KvParams p, AppResult* out);

}  // namespace sv::app

#include "shm/scoma_region.hpp"

// Header-only accessors; see numa_region.cpp.
namespace sv::shm {}

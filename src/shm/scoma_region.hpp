// aP-side view of the S-COMA region (paper section 5).
//
// The region is globally shared; every node's DRAM acts as an L3 cache for
// it, gated by clsSRAM state the aBIU checks on every bus operation.
// Applications use plain *cached* loads and stores — misses stall on bus
// retries until firmware (or block-transfer hardware, approaches 4/5)
// opens the line. The simulator exposes exactly that: cached accesses via
// the processor, nothing else.
#pragma once

#include "cpu/processor.hpp"
#include "niu/regs.hpp"
#include "sim/coro.hpp"

namespace sv::shm {

class ScomaRegion {
 public:
  ScomaRegion(cpu::Processor& ap, mem::Addr base = niu::kScomaBase,
              mem::Addr size = niu::kScomaDefaultSize)
      : ap_(ap), base_(base), size_(size) {}

  [[nodiscard]] mem::Addr addr(mem::Addr offset) const {
    return base_ + offset;
  }
  [[nodiscard]] mem::Addr base() const { return base_; }
  [[nodiscard]] mem::Addr size() const { return size_; }

  template <typename T>
  sim::Co<T> load(mem::Addr offset) {
    co_return co_await ap_.load_scalar<T>(addr(offset), /*cached=*/true);
  }

  template <typename T>
  sim::Co<void> store(mem::Addr offset, T v) {
    co_await ap_.store_scalar<T>(addr(offset), v, /*cached=*/true);
  }

  sim::Co<void> read(mem::Addr offset, std::span<std::byte> out) {
    co_await ap_.load(addr(offset), out);
  }
  sim::Co<void> write(mem::Addr offset, std::span<const std::byte> in) {
    co_await ap_.store(addr(offset), in);
  }

  /// Push any dirty cached copies of [offset, offset+len) back to the local
  /// DRAM L3 (useful before handing data to the NIU's block engines).
  sim::Co<void> flush(mem::Addr offset, std::size_t len) {
    co_await ap_.flush_range(addr(offset), len);
  }

 private:
  cpu::Processor& ap_;
  mem::Addr base_;
  mem::Addr size_;
};

}  // namespace sv::shm

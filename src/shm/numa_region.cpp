#include "shm/numa_region.hpp"

// Header-only accessors; this translation unit exists to give the target a
// stable archive member and a place for future out-of-line additions.
namespace sv::shm {}

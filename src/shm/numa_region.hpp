// aP-side view of the NUMA shared-memory window (paper section 5).
//
// Applications access the window with ordinary uncached loads/stores; the
// aBIU forwards them to firmware, which runs the remote-access protocol.
// This class only provides typed accessors and address arithmetic — there
// is deliberately no magic, the mechanism lives in the NIU.
#pragma once

#include "cpu/processor.hpp"
#include "niu/regs.hpp"
#include "sim/coro.hpp"

namespace sv::shm {

class NumaRegion {
 public:
  NumaRegion(cpu::Processor& ap, mem::Addr base = niu::kNumaBase,
             mem::Addr size = niu::kNumaSize)
      : ap_(ap), base_(base), size_(size) {}

  [[nodiscard]] mem::Addr addr(mem::Addr offset) const {
    return base_ + offset;
  }
  [[nodiscard]] mem::Addr base() const { return base_; }
  [[nodiscard]] mem::Addr size() const { return size_; }

  template <typename T>
  sim::Co<T> load(mem::Addr offset) {
    co_return co_await ap_.load_scalar<T>(addr(offset), /*cached=*/false);
  }

  template <typename T>
  sim::Co<void> store(mem::Addr offset, T v) {
    co_await ap_.store_scalar<T>(addr(offset), v, /*cached=*/false);
  }

  sim::Co<void> read(mem::Addr offset, std::span<std::byte> out) {
    co_await ap_.load_uncached(addr(offset), out);
  }
  sim::Co<void> write(mem::Addr offset, std::span<const std::byte> in) {
    co_await ap_.store_uncached(addr(offset), in);
  }

 private:
  cpu::Processor& ap_;
  mem::Addr base_;
  mem::Addr size_;
};

}  // namespace sv::shm

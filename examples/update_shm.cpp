// Update-based shared memory with the diff-ing hardware (paper section 5,
// "Extending Default Mechanisms").
//
// A producer node repeatedly modifies a few lines of a shared page and
// publishes its changes to a consumer. Three propagation strategies are
// compared on the same workload:
//
//   full    ship the whole page every round (kBlockXfer),
//   diff    value-diff against a staged old copy (kBlockDiffTx mode 1),
//   tracked clsSRAM dirty bits mark the modified lines as the aP writes
//           them, so the engine reads and ships only those (mode 0) —
//           "reducing the amount of diff-ing required".
//
//   $ ./update_shm [dirty_lines_per_round]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sys/experiment.hpp"
#include "sys/stats_dump.hpp"
#include "xfer/approaches.hpp"

using namespace sv;

namespace {

constexpr mem::Addr kPage = niu::kScomaBase + 0x10000;
constexpr std::uint32_t kPageLen = 4096;
constexpr mem::Addr kConsumerCopy = 0x0060'0000;
constexpr std::uint32_t kOldCopy = 0x18000;  // sSRAM staging
constexpr int kRounds = 8;

struct Run {
  sim::Tick total = 0;
  std::uint64_t packets = 0;
};

Run run_strategy(sys::Machine& machine, int mode, unsigned dirty_lines) {
  auto& kernel = machine.kernel();
  auto& ctrl0 = machine.node(0).niu().ctrl();
  const auto packets0 = machine.network().packets_delivered();
  const sim::Tick t0 = kernel.now();

  for (int round = 0; round < kRounds; ++round) {
    // The producer aP modifies `dirty_lines` lines.
    bool wrote = false;
    machine.node(0).ap().run(
        [](cpu::Processor* ap, unsigned n, int salt, bool* d) -> sim::Co<void> {
          const unsigned total = kPageLen / mem::kLineBytes;
          for (unsigned i = 0; i < n; ++i) {
            const mem::Addr a =
                kPage + static_cast<mem::Addr>((i * total) / n) *
                            mem::kLineBytes;
            co_await ap->store_scalar<std::uint32_t>(
                a, static_cast<std::uint32_t>(salt * 1000 + i));
          }
          co_await ap->flush_range(kPage, kPageLen);
          *d = true;
        }(&machine.node(0).ap(), dirty_lines, round, &wrote));
    sys::run_until(kernel, [&] { return wrote; },
                   kernel.now() + 500 * sim::kMillisecond);

    // Publish.
    niu::Command cmd;
    if (mode < 0) {
      cmd.op = niu::CmdOp::kBlockXfer;
      cmd.bank = niu::SramBank::kSSram;
      cmd.sram_offset = sys::Node::kDmaStagingBase;
    } else {
      cmd.op = niu::CmdOp::kBlockDiffTx;
      cmd.diff_mode = static_cast<std::uint8_t>(mode);
      if (mode == 1) {
        cmd.bank = niu::SramBank::kSSram;
        cmd.sram_offset = kOldCopy;
      }
    }
    cmd.addr = kPage;
    cmd.len = kPageLen;
    cmd.dest_node = 1;
    cmd.dest_addr = kConsumerCopy;
    ctrl0.post_command(0, std::move(cmd));
    sys::run_until(kernel,
                   [&] {
                     return ctrl0.commands_idle() &&
                            machine.node(1).niu().ctrl().commands_idle();
                   },
                   kernel.now() + 500 * sim::kMillisecond);
  }

  return Run{kernel.now() - t0,
             machine.network().packets_delivered() - packets0};
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned dirty =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;

  std::printf("Update-based shared memory: %d rounds, %u dirty lines of "
              "%u per round\n\n",
              kRounds, dirty, kPageLen / 32);

  sys::Table table({"strategy", "total_us", "per_round_us", "packets"});
  for (const auto& [name, mode] :
       std::initializer_list<std::pair<const char*, int>>{
           {"full page (kBlockXfer)", -1},
           {"value diff (mode 1)", 1},
           {"cls-tracked diff (mode 0)", 0}}) {
    sys::Machine::Params params;
    params.nodes = 2;
    params.node.enable_scoma = false;
    sys::Machine machine(params);
    machine.node(0).niu().abiu().enable_write_tracking(kPage, kPageLen);
    if (mode == 1) {
      // Seed the old copy with the page's initial contents.
      std::vector<std::byte> snap(kPageLen);
      machine.node(0).dram().store().read(kPage, snap);
      machine.node(0).niu().ssram().write(kOldCopy, snap);
    }
    const Run r = run_strategy(machine, mode, dirty);
    table.add_row({name, sys::Table::fmt_us(r.total),
                   sys::Table::fmt_us(r.total / kRounds),
                   std::to_string(r.packets)});
  }
  table.print(std::cout);

  std::printf("\nThe tracked strategy ships only what changed, without\n"
              "reading the whole page to find out what that was.\n");
  return 0;
}

// Quickstart: boot a two-node StarT-Voyager machine, send a Basic message
// and an Express message between the application processors, and print
// what happened.
//
//   $ ./quickstart
//
// Walks through the library-level API: sys::Machine assembles nodes (aP +
// cache + bus + DRAM + NIU + sP firmware) on the Arctic fat tree;
// msg::Endpoint is the user-level view of a node's message queues.
#include <cstdio>
#include <cstring>

#include "msg/endpoint.hpp"
#include "sys/experiment.hpp"
#include "sys/machine.hpp"

using namespace sv;

int main() {
  // 1. Build the machine: two nodes, default (paper) configuration.
  sys::Machine::Params params;
  params.nodes = 2;
  sys::Machine machine(params);
  const msg::AddressMap map = machine.addr_map();

  std::printf("StarT-Voyager quickstart: %zu nodes on a radix-%u fat tree\n",
              machine.size(), machine.params().radix);

  // 2. Open a user endpoint on each node.
  msg::Endpoint ep0 = machine.node(0).make_endpoint();
  msg::Endpoint ep1 = machine.node(1).make_endpoint();

  bool done = false;

  // 3. Node 0's program: a Basic message, then an Express message.
  machine.node(0).ap().run(
      [](msg::Endpoint* ep, msg::AddressMap map) -> sim::Co<void> {
        const char text[] = "hello from node 0";
        co_await ep->send(map.user0(1),
                          std::as_bytes(std::span(text, sizeof(text))));
        // Express: 5 bytes in a single uncached store.
        co_await ep->send_express(
            static_cast<std::uint8_t>(map.express(1)), /*extra=*/0x42,
            /*word=*/0xDEADBEEF);
      }(&ep0, map));

  // 4. Node 1's program: receive both and report.
  machine.node(1).ap().run(
      [](msg::Endpoint* ep, sim::Kernel* kernel, bool* flag) -> sim::Co<void> {
        msg::Message m = co_await ep->recv();
        std::printf("[%8.2f us] node 1 got Basic message from node %u: "
                    "\"%s\" (%zu bytes)\n",
                    static_cast<double>(kernel->now()) / 1e6, m.src_node,
                    reinterpret_cast<const char*>(m.data.data()),
                    m.data.size());
        msg::ExpressMessage e = co_await ep->recv_express();
        std::printf("[%8.2f us] node 1 got Express message: extra=0x%02X "
                    "word=0x%08X\n",
                    static_cast<double>(kernel->now()) / 1e6, e.extra,
                    e.word);
        *flag = true;
      }(&ep1, &machine.kernel(), &done));

  // 5. Run the simulation until the programs finish.
  if (!sys::run_until(machine.kernel(), [&] { return done; },
                      100 * sim::kMillisecond)) {
    std::printf("timed out!\n");
    return 1;
  }

  const auto& net = machine.network();
  std::printf("done at %.2f us; network delivered %llu packets "
              "(mean transit %.2f us)\n",
              static_cast<double>(machine.kernel().now()) / 1e6,
              static_cast<unsigned long long>(
                  net.packets_delivered()),
              net.transit_ps().mean() / 1e6);
  return 0;
}

// A real parallel application on the simulated machine: 1-D-decomposed
// Jacobi relaxation with halo exchange, the workload class the paper's
// introduction motivates ("general parallel application execution").
//
// Each of 4 nodes owns a slab of a 1-D rod and iterates
//     u'[i] = (u[i-1] + u[i+1]) / 2
// exchanging one-element halos with its neighbours every step. Two
// exchange strategies run on identical problems:
//
//   messages  halos travel as Basic messages (low latency, small data),
//   dma       halos travel as DMA writes into the neighbour's memory
//             (the am_store pattern; overkill at this halo size — the
//             comparison shows exactly the crossover the mechanisms make).
//
//   $ ./stencil [iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "msg/channel.hpp"
#include "msg/dma.hpp"
#include "sys/experiment.hpp"
#include "sys/machine.hpp"

using namespace sv;

namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kLocal = 256;            // doubles per node
constexpr mem::Addr kSlab = 0x0030'0000;        // local slab base
constexpr mem::Addr kHaloLeft = 0x0038'0000;    // incoming halos (32 B each)
constexpr mem::Addr kHaloRight = 0x0038'0020;

enum : std::uint32_t { kTagLeft = 1, kTagRight = 2 };

struct Result {
  double checksum = 0;
  sim::Tick elapsed = 0;
};

/// One worker; `use_dma` selects the halo-exchange strategy.
sim::Co<void> worker(sys::Machine* machine, sim::NodeId self, int iters,
                     bool use_dma, Result* result, int* done) {
  auto& node = machine->node(self);
  auto& ap = node.ap();
  msg::Endpoint ep = node.make_endpoint();
  msg::Channel ch(ep, machine->addr_map(), self);
  const auto map = machine->addr_map();

  const bool has_left = self > 0;
  const bool has_right = self + 1 < kNodes;

  // Initialize the slab: a step function that relaxation smooths out.
  for (std::size_t i = 0; i < kLocal; ++i) {
    const double v = (self * kLocal + i) < (kNodes * kLocal / 2) ? 1.0 : 0.0;
    co_await ap.store_scalar<double>(kSlab + i * 8, v);
  }
  co_await ch.barrier();

  const sim::Tick t0 = machine->kernel().now();
  for (int it = 0; it < iters; ++it) {
    // Publish boundary elements to the neighbours.
    const double left_val = co_await ap.load_scalar<double>(kSlab);
    const double right_val =
        co_await ap.load_scalar<double>(kSlab + (kLocal - 1) * 8);
    if (use_dma) {
      // Write the halo value into our DRAM staging line, DMA it into the
      // neighbour's halo slot, completion into their user queue.
      if (has_left) {
        co_await ap.store_scalar<double>(kHaloRight + 0x40, left_val);
        co_await ap.flush_range(kHaloRight + 0x40, 32);
        co_await msg::dma_write(ep, map, self, self - 1,
                                kHaloRight + 0x40, kHaloRight, 32,
                                msg::AddressMap::kUser0L, kTagRight);
      }
      if (has_right) {
        co_await ap.store_scalar<double>(kHaloLeft + 0x40, right_val);
        co_await ap.flush_range(kHaloLeft + 0x40, 32);
        co_await msg::dma_write(ep, map, self, self + 1,
                                kHaloLeft + 0x40, kHaloLeft, 32,
                                msg::AddressMap::kUser0L, kTagLeft);
      }
      // Collect completion notifications, then read the landed halos.
      int expected = (has_left ? 1 : 0) + (has_right ? 1 : 0);
      for (int k = 0; k < expected; ++k) {
        (void)co_await ep.recv();
      }
    } else {
      if (has_left) {
        co_await ch.send_value<double>(self - 1, kTagRight, left_val);
      }
      if (has_right) {
        co_await ch.send_value<double>(self + 1, kTagLeft, right_val);
      }
    }

    double halo_left = 0.0, halo_right = 0.0;
    if (use_dma) {
      co_await ap.invalidate_line(kHaloLeft);
      co_await ap.invalidate_line(kHaloRight);
      if (has_left) {
        halo_left = co_await ap.load_scalar<double>(kHaloLeft);
      }
      if (has_right) {
        halo_right = co_await ap.load_scalar<double>(kHaloRight);
      }
    } else {
      if (has_left) {
        halo_left = co_await ch.recv_value<double>(self - 1, kTagLeft);
      }
      if (has_right) {
        halo_right = co_await ch.recv_value<double>(self + 1, kTagRight);
      }
    }
    if (!has_left) {
      halo_left = 1.0;  // fixed boundary condition
    }
    if (!has_right) {
      halo_right = 0.0;
    }

    // Relax: read the row, write the next one in place (Jacobi on a copy
    // held in registers — two passes keep it simple and deterministic).
    double prev = halo_left;
    double cur = co_await ap.load_scalar<double>(kSlab);
    for (std::size_t i = 0; i < kLocal; ++i) {
      const double next = i + 1 < kLocal
                              ? co_await ap.load_scalar<double>(
                                    kSlab + (i + 1) * 8)
                              : halo_right;
      co_await ap.store_scalar<double>(kSlab + i * 8,
                                       (prev + next) / 2.0);
      prev = cur;
      cur = next;
    }
    // DMA reads source data coherently from DRAM: flush the slab edges.
    if (use_dma) {
      co_await ap.flush_range(kSlab, 32);
      co_await ap.flush_range(kSlab + (kLocal - 1) * 8, 32);
    }
    co_await ch.barrier();
  }

  // Checksum via allreduce.
  double local = 0;
  for (std::size_t i = 0; i < kLocal; ++i) {
    local += co_await ap.load_scalar<double>(kSlab + i * 8);
  }
  const auto bits = co_await ch.allreduce_sum(
      static_cast<std::uint64_t>(local * 1e6));
  if (self == 0) {
    result->checksum = static_cast<double>(bits) / 1e6;
    result->elapsed = machine->kernel().now() - t0;
  }
  ++*done;
}

Result run(int iters, bool use_dma) {
  sys::Machine::Params params;
  params.nodes = kNodes;
  sys::Machine machine(params);
  Result result;
  int done = 0;
  for (sim::NodeId n = 0; n < kNodes; ++n) {
    machine.node(n).ap().run(
        worker(&machine, n, iters, use_dma, &result, &done));
  }
  if (!sys::run_until(machine.kernel(),
                      [&] { return done == static_cast<int>(kNodes); },
                      20000 * sim::kMillisecond)) {
    std::fprintf(stderr, "stencil: timed out\n");
    std::exit(1);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 20;
  std::printf("Jacobi relaxation: %zu nodes x %zu points, %d iterations\n\n",
              kNodes, kLocal, iters);

  const Result msg_res = run(iters, /*use_dma=*/false);
  const Result dma_res = run(iters, /*use_dma=*/true);

  std::printf("  halo via Basic messages: %8.1f us  (checksum %.3f)\n",
              static_cast<double>(msg_res.elapsed) / 1e6,
              msg_res.checksum);
  std::printf("  halo via DMA writes:     %8.1f us  (checksum %.3f)\n",
              static_cast<double>(dma_res.elapsed) / 1e6,
              dma_res.checksum);

  if (std::fabs(msg_res.checksum - dma_res.checksum) > 1e-3) {
    std::printf("CHECKSUM MISMATCH\n");
    return 1;
  }
  std::printf("\nchecksums agree; at one-element halos the lighter Basic-"
              "message path wins,\nwhich is precisely why the platform "
              "offers both mechanisms.\n");
  return 0;
}

// Multi-queue / protection showcase (paper sections 2 and 4):
//
//   1. protection: a message to an invalid virtual destination shuts the
//      offending transmit queue down and interrupts firmware, without
//      disturbing traffic on other queues;
//   2. transmit prioritization: the dynamically reconfigurable priority
//      register lets an urgent queue overtake a bulk stream;
//   3. receive-queue caching: a logical queue with no hardware binding is
//      diverted to the miss queue and spilled by firmware into a
//      DRAM-resident image the library reads back.
//
//   $ ./multiqueue
#include <cstdio>

#include "msg/dram_queue.hpp"
#include "sys/experiment.hpp"
#include "sys/machine.hpp"

using namespace sv;

int main() {
  sys::Machine::Params params;
  params.nodes = 2;
  sys::Machine machine(params);
  const auto map = machine.addr_map();
  auto& kernel = machine.kernel();
  auto& ctrl0 = machine.node(0).niu().ctrl();

  msg::Endpoint ep0 = machine.node(0).make_endpoint();


  // --- 1. Protection ---------------------------------------------------------
  std::printf("== protection ==\n");
  {
    bool sent = false;
    machine.node(0).ap().run(
        [](msg::Endpoint* ep, bool* done) -> sim::Co<void> {
          // 0xEE is far outside the translation table: CTRL must refuse.
          co_await ep->send(0xEE, std::vector<std::byte>(4));
          *done = true;
        }(&ep0, &sent));
    sys::run_until(kernel,
                   [&] {
                     return sent &&
                            ctrl0.txq(sys::Node::kTxUser0).shutdown;
                   },
                   kernel.now() + 100 * sim::kMillisecond);
    std::printf("  sent to invalid vdest 0xEE -> tx queue %u shut down "
                "(shutdown reg = 0x%llX, interrupt status = 0x%llX)\n",
                sys::Node::kTxUser0,
                static_cast<unsigned long long>(
                    ctrl0.read_reg(niu::SysReg::kShutdownStatus)),
                static_cast<unsigned long long>(ctrl0.interrupt_status()));

    // The "OS" clears the bad message and re-enables the queue.
    auto& q = ctrl0.txq(sys::Node::kTxUser0);
    q.consumer = q.producer;
    ctrl0.write_reg(niu::SysReg::kShutdownStatus,
                    1ull << sys::Node::kTxUser0);
    ctrl0.clear_interrupts(~0ull);
    std::printf("  OS drained the queue and re-enabled it\n");
  }

  // --- 2. Priority arbitration -----------------------------------------------
  // A probe message on the user1 queue competes with a 16-message bulk
  // stream on the user0 queue. When the bulk queue outranks the probe, the
  // probe waits for the whole stream; when classes are equal, round-robin
  // interleaves it promptly; an outranking probe goes out first.
  std::printf("== transmit prioritization ==\n");
  struct Case {
    const char* name;
    std::uint64_t bulk_class;
    std::uint64_t probe_class;
  };
  for (const Case c : {Case{"bulk outranks probe (3 vs 1)", 3, 1},
                       Case{"equal classes (1 vs 1)      ", 1, 1},
                       Case{"probe outranks bulk (1 vs 3)", 1, 3}}) {
    std::uint64_t prio = c.bulk_class << (2 * sys::Node::kTxUser0);
    prio |= c.probe_class << (2 * sys::Node::kTxUser1);
    ctrl0.write_reg(niu::SysReg::kTxPriority, prio);

    // Bulk stream on user0 (backdoor compose), probe on user1.
    auto& asram = machine.node(0).niu().asram();
    auto& bulk = ctrl0.txq(sys::Node::kTxUser0);
    for (int i = 0; i < 16; ++i) {
      niu::MsgDescriptor d;
      d.vdest = map.user0(1);
      d.length = 88;
      std::byte hdr[8];
      d.encode(hdr);
      asram.write(
          bulk.slot_addr(static_cast<std::uint16_t>(bulk.producer + i)),
          hdr);
    }
    ctrl0.tx_producer_update(
        sys::Node::kTxUser0,
        static_cast<std::uint16_t>(bulk.producer + 16));

    auto& urgent = ctrl0.txq(sys::Node::kTxUser1);
    niu::MsgDescriptor d;
    d.vdest = map.user1(1);
    d.length = 8;
    std::byte hdr[8];
    d.encode(hdr);
    asram.write(urgent.slot_addr(urgent.producer), hdr);

    auto& rx = machine.node(1).niu().ctrl().rxq(sys::Node::kRxUser1);
    const auto before = rx.producer;
    const sim::Tick t0 = kernel.now();
    ctrl0.tx_producer_update(
        sys::Node::kTxUser1,
        static_cast<std::uint16_t>(urgent.producer + 1));
    sys::run_until(kernel, [&] { return rx.producer != before; },
                   t0 + 100 * sim::kMillisecond);
    std::printf("  probe behind 16 bulk messages, %s: %.2f us\n", c.name,
                static_cast<double>(kernel.now() - t0) / 1e6);
    // Drain the bulk before the next round.
    sys::run_until(kernel,
                   [&] { return ctrl0.txq(sys::Node::kTxUser0).empty(); },
                   kernel.now() + 100 * sim::kMillisecond);
    auto& rctrl = machine.node(1).niu().ctrl();
    rctrl.rx_consumer_update(sys::Node::kRxUser0,
                             rctrl.rxq(sys::Node::kRxUser0).producer);
    rctrl.rx_consumer_update(sys::Node::kRxUser1, rx.producer);
  }

  // --- 3. Receive-queue caching / DRAM-resident queues -------------------------
  std::printf("== receive-queue caching ==\n");
  {
    constexpr net::QueueId kLogical = 0x0321;
    fw::DramQueueDesc desc;
    desc.base = 0x0050'0000;
    desc.slots = 32;
    machine.node(1).miss_service()->register_queue(kLogical, desc);

    bool got = false;
    machine.node(0).ap().run(
        [](msg::Endpoint* ep) -> sim::Co<void> {
          const char text[] = "spilled to DRAM";
          co_await ep->send_raw(1, 0x0321,
                                std::as_bytes(std::span(text,
                                                        sizeof(text))));
        }(&ep0));
    msg::DramQueue dq(machine.node(1).ap(), desc);
    machine.node(1).ap().run(
        [](msg::DramQueue* q, bool* done) -> sim::Co<void> {
          msg::Message m = co_await q->recv();
          std::printf("  message for unbound logical queue 0x%04X arrived "
                      "via the miss queue: \"%s\"\n",
                      m.logical,
                      reinterpret_cast<const char*>(m.data.data()));
          *done = true;
        }(&dq, &got));
    sys::run_until(kernel, [&] { return got; },
                   kernel.now() + 100 * sim::kMillisecond);
    std::printf("  firmware miss service handled %llu spill(s)\n",
                static_cast<unsigned long long>(
                    machine.node(1).miss_service()->serviced().value()));
  }

  std::printf("all demos completed at %.2f us simulated\n",
              static_cast<double>(kernel.now()) / 1e6);
  return 0;
}

// Block-transfer showcase: run the paper's five approaches (section 6) on
// one machine and print latency / bandwidth / occupancy tables — a
// human-readable rendition of Figures 3 and 4 plus the occupancy story.
//
//   $ ./block_transfer [size_bytes]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sys/experiment.hpp"
#include "xfer/approaches.hpp"

using namespace sv;

namespace {

const char* kApproachNames[] = {
    "",
    "1: aP-managed (Basic msgs)",
    "2: sP-managed (cmd queues + TagOn)",
    "3: hardware block ops",
    "4: blk ops + optimistic S-COMA (fw)",
    "5: blk ops + optimistic S-COMA (hw)",
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t base_len =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16384;

  sys::Machine::Params params;
  params.nodes = 2;
  params.node.enable_scoma = false;  // approaches 4/5 manage cls themselves
  sys::Machine machine(params);
  xfer::BlockTransferHarness harness(machine);

  std::printf("Block memory transfer, %u bytes, node 0 -> node 1\n\n",
              base_len);

  sys::Table table({"approach", "notify_us", "consumed_us", "BW_MB/s",
                    "tx_aP_us", "tx_sP_us", "rx_sP_us", "verified"});
  for (int approach = 1; approach <= 5; ++approach) {
    xfer::TransferSpec spec;
    spec.sender = 0;
    spec.receiver = 1;
    spec.src = 0x0010'0000;
    spec.dst = approach >= 4 ? niu::kScomaBase + 0x8000 : 0x0040'0000;
    spec.len = base_len;

    xfer::RunOptions opt;
    opt.consume = true;
    const auto res = harness.run(approach, spec, opt);

    table.add_row({kApproachNames[approach],
                   sys::Table::fmt_us(res.latency()),
                   sys::Table::fmt_us(res.consume_time - res.start),
                   sys::Table::fmt_mbps(base_len, res.latency()),
                   sys::Table::fmt_us(res.sender_ap_busy),
                   sys::Table::fmt_us(res.sender_sp_busy),
                   sys::Table::fmt_us(res.receiver_sp_busy),
                   res.ok ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::printf(
      "\nShapes to notice (paper section 6):\n"
      "  - approach 1 is slowest: data crosses each aP bus twice and the\n"
      "    sender aP is busy nearly the whole time;\n"
      "  - approach 2 moves the burden to the sPs (tx_sP/rx_sP columns);\n"
      "  - approach 3 is fastest with both processors nearly idle;\n"
      "  - approaches 4/5 'notify' after ~1/4 of the data -- the receiver\n"
      "    unblocks early and rides clsSRAM retries for late lines; 5 does\n"
      "    the line-opening in aBIU hardware (rx_sP drops to ~0).\n");
  return 0;
}

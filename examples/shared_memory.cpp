// Shared-memory example: a parallel sum over an S-COMA shared array on a
// four-node machine, with a message barrier — message passing and shared
// memory coexisting on the same NIU, which is the platform's point.
//
//   $ ./shared_memory
//
// Each node writes its partition of a shared array through the S-COMA
// region (its local DRAM acts as an L3 cache; firmware runs the coherence
// protocol), then node 0 reads the whole array — pulling remote lines on
// demand — and checks the total. A NUMA-window demo follows: the same
// pattern with uncached remote accesses and no caching.
#include <cstdio>

#include "msg/channel.hpp"
#include "shm/numa_region.hpp"
#include "shm/scoma_region.hpp"
#include "sys/experiment.hpp"
#include "sys/machine.hpp"

using namespace sv;

namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kWords = 64;  // per node
constexpr mem::Addr kArray = 0x1000;

sim::Co<void> worker(sys::Machine* machine, sim::NodeId self, bool* done,
                     std::uint64_t* result) {
  auto& node = machine->node(self);
  msg::Endpoint ep = node.make_endpoint();
  msg::Channel ch(ep, machine->addr_map(), self);
  shm::ScomaRegion shared(node.ap());

  // Phase 1: every node fills its partition of the shared array.
  for (std::size_t i = 0; i < kWords; ++i) {
    const std::size_t idx = self * kWords + i;
    co_await shared.store<std::uint64_t>(kArray + idx * 8,
                                         static_cast<std::uint64_t>(idx));
  }
  co_await ch.barrier();

  // Phase 2: node 0 sums the whole array, faulting remote lines in
  // through the S-COMA protocol.
  if (self == 0) {
    std::uint64_t sum = 0;
    for (std::size_t idx = 0; idx < kNodes * kWords; ++idx) {
      sum += co_await shared.load<std::uint64_t>(kArray + idx * 8);
    }
    *result = sum;
    const std::uint64_t n = kNodes * kWords;
    std::printf("S-COMA parallel sum: %llu (expected %llu) -- %s\n",
                static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(n * (n - 1) / 2),
                sum == n * (n - 1) / 2 ? "OK" : "MISMATCH");
    std::uint64_t misses = 0, grants = 0;
    for (sim::NodeId n = 0; n < kNodes; ++n) {
      misses += machine->node(n).scoma()->stats().read_misses.value();
      grants += machine->node(n).scoma()->stats().grants.value();
    }
    std::printf("  protocol work so far (all nodes): %llu read misses, "
                "%llu directory grants\n",
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(grants));
  }
  co_await ch.barrier();

  // Phase 3: the same reduction through the NUMA window (uncached remote
  // accesses; every access pays the firmware toll, nothing is cached).
  shm::NumaRegion numa(node.ap());
  co_await numa.store<std::uint64_t>(self * 8, self + 1);
  co_await ch.barrier();
  if (self == 0) {
    std::uint64_t sum = 0;
    for (std::size_t n = 0; n < kNodes; ++n) {
      sum += co_await numa.load<std::uint64_t>(n * 8);
    }
    std::printf("NUMA window sum:     %llu (expected %llu) -- %s\n",
                static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(kNodes * (kNodes + 1) / 2),
                sum == kNodes * (kNodes + 1) / 2 ? "OK" : "MISMATCH");
  }
  co_await ch.barrier();
  done[self] = true;
  (void)result;
}

}  // namespace

int main() {
  sys::Machine::Params params;
  params.nodes = kNodes;
  sys::Machine machine(params);

  std::printf("S-COMA + NUMA shared memory on %zu nodes\n", kNodes);

  bool done[kNodes] = {};
  std::uint64_t result = 0;
  for (sim::NodeId n = 0; n < kNodes; ++n) {
    machine.node(n).ap().run(worker(&machine, n, done, &result));
  }

  const bool ok = sys::run_until(
      machine.kernel(),
      [&] {
        for (bool d : done) {
          if (!d) {
            return false;
          }
        }
        return true;
      },
      2000 * sim::kMillisecond);
  if (!ok) {
    std::printf("timed out!\n");
    return 1;
  }
  std::printf("finished at %.2f us simulated\n",
              static_cast<double>(machine.kernel().now()) / 1e6);
  return 0;
}

// MPI-lite example: ping-pong latency, bandwidth, barrier and allreduce
// over msg::Channel (the "usual MPI interface" veneer of paper layer 0).
//
//   $ ./pingpong [rounds]
#include <cstdio>
#include <cstdlib>

#include "msg/channel.hpp"
#include "sys/experiment.hpp"
#include "sys/machine.hpp"

using namespace sv;

namespace {

sim::Co<void> rank0(sys::Machine* machine, int rounds, bool* done) {
  auto& node = machine->node(0);
  msg::Endpoint ep = node.make_endpoint();
  msg::Channel ch(ep, machine->addr_map(), 0);
  auto& kernel = machine->kernel();

  // Ping-pong: 8-byte payloads.
  const sim::Tick t0 = kernel.now();
  for (int i = 0; i < rounds; ++i) {
    co_await ch.send_value<std::uint64_t>(1, /*tag=*/1, i);
    (void)co_await ch.recv_value<std::uint64_t>(1, /*tag=*/2);
  }
  const sim::Tick rtt = (kernel.now() - t0) / rounds;
  std::printf("ping-pong:   %d rounds, round trip %.2f us (one-way ~%.2f)\n",
              rounds, static_cast<double>(rtt) / 1e6,
              static_cast<double>(rtt) / 2e6);

  // Bandwidth: one large fragmented send.
  std::vector<std::byte> big(64 * 1024);
  const sim::Tick t1 = kernel.now();
  co_await ch.send(1, /*tag=*/3, big);
  (void)co_await ch.recv_value<std::uint8_t>(1, /*tag=*/4);  // ack
  const sim::Tick dur = kernel.now() - t1;
  std::printf("bandwidth:   64 KiB in %.2f us = %.1f MB/s "
              "(fragmented Basic messages)\n",
              static_cast<double>(dur) / 1e6,
              static_cast<double>(big.size()) /
                  (static_cast<double>(dur) * 1e-12) / 1e6);

  // Collectives.
  const sim::Tick t2 = kernel.now();
  co_await ch.barrier();
  std::printf("barrier:     %.2f us across %zu ranks\n",
              static_cast<double>(kernel.now() - t2) / 1e6, ch.size());

  const std::uint64_t sum = co_await ch.allreduce_sum(1);
  std::printf("allreduce:   sum of ones = %llu (expected %zu)\n",
              static_cast<unsigned long long>(sum), ch.size());
  *done = true;
}

sim::Co<void> rank_other(sys::Machine* machine, sim::NodeId self,
                         int rounds) {
  auto& node = machine->node(self);
  msg::Endpoint ep = node.make_endpoint();
  msg::Channel ch(ep, machine->addr_map(), self);

  if (self == 1) {
    for (int i = 0; i < rounds; ++i) {
      (void)co_await ch.recv_value<std::uint64_t>(0, 1);
      co_await ch.send_value<std::uint64_t>(0, 2, i);
    }
    (void)co_await ch.recv(0, 3);
    co_await ch.send_value<std::uint8_t>(0, 4, 1);
  }
  co_await ch.barrier();
  (void)co_await ch.allreduce_sum(1);
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 50;

  sys::Machine::Params params;
  params.nodes = 4;
  sys::Machine machine(params);
  std::printf("MPI-lite on %zu nodes (Arctic fat tree)\n\n", machine.size());

  bool done = false;
  machine.node(0).ap().run(rank0(&machine, rounds, &done));
  for (sim::NodeId n = 1; n < machine.size(); ++n) {
    machine.node(n).ap().run(rank_other(&machine, n, rounds));
  }

  if (!sys::run_until(machine.kernel(), [&] { return done; },
                      2000 * sim::kMillisecond)) {
    std::printf("timed out!\n");
    return 1;
  }
  return 0;
}
